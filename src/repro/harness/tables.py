"""One driver function per table of the paper's evaluation section."""

from __future__ import annotations

import time

import numpy as np

from repro.config import LSHConfig
from repro.datasets.stats import PAPER_DATASET_STATS, compute_statistics
from repro.datasets.synthetic import (
    amazon_like_config,
    delicious_like_config,
    generate_synthetic_xc,
)
from repro.lsh.index import LSHIndex
from repro.perf.cpu_counters import slide_breakdown, tf_breakdown
from repro.perf.devices import SLIDE_UTILIZATION, TF_CPU_UTILIZATION
from repro.perf.memory import hugepages_counter_comparison, slide_memory_footprint
from repro.utils.rng import derive_rng

__all__ = [
    "table1_dataset_statistics",
    "table2_core_utilization",
    "table3_insertion_timing",
    "table4_hugepages_counters",
]


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------
def table1_dataset_statistics(
    scale: float = 1.0 / 1024.0, seed: int = 0
) -> list[dict[str, float | int | str]]:
    """Paper datasets (as reported) next to the synthetic stand-ins (as measured)."""
    rows: list[dict[str, float | int | str]] = []
    for stats in PAPER_DATASET_STATS.values():
        row = stats.as_row()
        row["source"] = "paper"
        rows.append(row)

    for builder in (delicious_like_config, amazon_like_config):
        config = builder(scale=scale, seed=seed)
        dataset = generate_synthetic_xc(config)
        stats = compute_statistics(
            config.name,
            dataset.train,
            dataset.test,
            feature_dim=config.feature_dim,
            label_dim=config.label_dim,
        )
        row = stats.as_row()
        row["source"] = "synthetic"
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 2 — core utilisation
# ----------------------------------------------------------------------
def table2_core_utilization(
    threads: tuple[int, ...] = (8, 16, 32),
    output_dim: int = 670_091,
    hidden_dim: int = 128,
    batch_size: int = 256,
    avg_active_output: float = 3000.0,
) -> list[dict[str, float | int | str]]:
    """Core utilisation of TF-CPU vs SLIDE at several thread counts.

    Two columns are reported per framework: the calibrated utilisation curve
    used by the wall-clock device model (anchored on the paper's Table 2),
    and the utilisation implied by the mechanistic pipeline-slot model of
    Figure 6 — showing that the model reproduces the *direction* of the
    paper's measurement (SLIDE stays high and flat, TF-CPU degrades).
    """
    rows: list[dict[str, float | int | str]] = []
    for t in threads:
        tf_model = tf_breakdown(t, output_dim, hidden_dim, batch_size)
        slide_model = slide_breakdown(t, avg_active_output, hidden_dim, batch_size, output_dim)
        rows.append(
            {
                "threads": t,
                "TF-CPU_utilization_calibrated": round(TF_CPU_UTILIZATION(t), 3),
                "SLIDE_utilization_calibrated": round(SLIDE_UTILIZATION(t), 3),
                "TF-CPU_utilization_model": round(tf_model.utilization(), 3),
                "SLIDE_utilization_model": round(slide_model.utilization(), 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 3 — hash-table insertion schemes
# ----------------------------------------------------------------------
def table3_insertion_timing(
    num_neurons: int = 20_000,
    dim: int = 128,
    k: int = 6,
    l: int = 20,
    bucket_size: int = 64,
    seed: int = 0,
) -> list[dict[str, float | int | str]]:
    """Wall-clock of Reservoir vs FIFO insertion, excluding and including hashing.

    Mirrors Table 3: "Insertion to HT" is the time to place pre-hashed neuron
    ids into buckets; "Full Insertion" additionally includes computing every
    neuron's hash codes.  (The paper inserts the 205,443 output neurons of
    Delicious-200K; the default here is scaled down but the relative ordering
    — reservoir slightly cheaper than FIFO, both dwarfed by hashing — is the
    reproduced result.)
    """
    rng = derive_rng(seed)
    weights = rng.normal(size=(num_neurons, dim))
    rows: list[dict[str, float | int | str]] = []
    for policy in ("reservoir", "fifo"):
        config = LSHConfig(
            hash_family="simhash", k=k, l=l, bucket_size=bucket_size, insertion_policy=policy
        )
        index = LSHIndex(dim, config, seed=seed)

        # Full insertion: hashing plus bucket placement.
        start_full = time.perf_counter()
        all_codes = index.hash_family.hash_matrix(weights)
        hash_seconds = time.perf_counter() - start_full

        start_insert = time.perf_counter()
        for neuron_id in range(num_neurons):
            index._insert_with_codes(neuron_id, all_codes[neuron_id])
        insert_seconds = time.perf_counter() - start_insert

        rows.append(
            {
                "policy": "Reservoir Sampling" if policy == "reservoir" else "FIFO",
                "insertion_to_ht_s": insert_seconds,
                "full_insertion_s": hash_seconds + insert_seconds,
                "num_neurons": num_neurons,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 4 — CPU counters with and without hugepages
# ----------------------------------------------------------------------
def table4_hugepages_counters(
    input_dim: int = 135_909,
    hidden_dim: int = 128,
    output_dim: int = 670_091,
    batch_size: int = 256,
    avg_active_output: float = 3000.0,
    avg_input_nnz: float = 75.0,
    l_tables: int = 50,
    iterations_per_second: float = 10.0,
) -> list[dict[str, float | str]]:
    """TLB / page-walk / page-fault metrics with 4 KB vs 2 MB pages (Table 4)."""
    footprint = slide_memory_footprint(
        input_dim=input_dim,
        hidden_dim=hidden_dim,
        output_dim=output_dim,
        batch_size=batch_size,
        avg_active_output=avg_active_output,
        avg_input_nnz=avg_input_nnz,
        l_tables=l_tables,
    )
    comparison = hugepages_counter_comparison(footprint, iterations_per_second)
    rows: list[dict[str, float | str]] = []
    for metric, values in comparison.items():
        rows.append(
            {
                "metric": metric,
                "without_hugepages": values["without_hugepages"],
                "with_hugepages": values["with_hugepages"],
                "improvement_factor": (
                    values["without_hugepages"] / values["with_hugepages"]
                    if values["with_hugepages"]
                    else float("inf")
                ),
            }
        )
    return rows
