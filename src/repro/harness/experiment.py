"""Shared head-to-head experiment machinery.

A :class:`HeadToHeadExperiment` trains SLIDE, the dense full-softmax baseline
and (optionally) the sampled-softmax baseline on the *same* synthetic
extreme-classification dataset with the same optimiser, records per-iteration
accuracy and the **measured** per-iteration work, and attributes wall-clock
time to each framework with the calibrated device profiles.  Every
time-vs-accuracy / scalability / batch-size figure in the paper is a view
over the :class:`MeasuredRun` objects this module produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.baselines.sampled_softmax import SampledSoftmaxConfig, SampledSoftmaxNetwork
from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import SyntheticXCConfig, SyntheticXCDataset, generate_synthetic_xc
from repro.perf.cost_model import (
    WorkloadCounts,
    dense_iteration_work,
    sampled_softmax_iteration_work,
    slide_iteration_work,
)
from repro.perf.devices import SLIDE_CPU_PROFILE, TF_CPU_PROFILE, TF_GPU_PROFILE
from repro.perf.memory import HUGEPAGES_SPEEDUP
from repro.perf.simulator import SimulatedRun, WallClockSimulator
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = [
    "ExperimentConfig",
    "MeasuredRun",
    "HeadToHeadExperiment",
    "PaperScaleDims",
    "DELICIOUS_PAPER_DIMS",
    "AMAZON_PAPER_DIMS",
    "project_run_to_paper_scale",
    "small_experiment_config",
]


@dataclass(frozen=True)
class PaperScaleDims:
    """The paper's full-scale workload dimensions for one dataset.

    The synthetic stand-in datasets are necessarily much smaller than
    Delicious-200K / Amazon-670K, so the *accuracy curves* come from runs on
    the scaled data while the *work per iteration* (and hence the simulated
    wall clock of Figures 5, 7-10) is re-expressed at the paper's dimensions.
    ``avg_active_output`` is the active-neuron count the paper reports
    (~1000 for Delicious, ~3000 for Amazon — under 0.5 % of the output
    layer); the scaled runs confirm the same qualitative sparsity but cannot
    reach the same absolute fraction with only a few hundred labels.
    """

    name: str
    feature_nnz: float
    hidden_dim: int
    output_dim: int
    batch_size: int
    avg_active_output: float
    k: int
    l: int
    sampled_softmax_fraction: float = 0.2


DELICIOUS_PAPER_DIMS = PaperScaleDims(
    name="Delicious-200K",
    feature_nnz=75.0,
    hidden_dim=128,
    output_dim=205_443,
    batch_size=128,
    avg_active_output=1000.0,
    k=9,
    l=50,
)

AMAZON_PAPER_DIMS = PaperScaleDims(
    name="Amazon-670K",
    feature_nnz=75.0,
    hidden_dim=128,
    output_dim=670_091,
    batch_size=256,
    avg_active_output=3000.0,
    k=8,
    l=50,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and hyper-parameters of one head-to-head experiment."""

    dataset: SyntheticXCConfig
    hidden_dim: int = 128
    batch_size: int = 64
    epochs: int = 2
    eval_every: int = 5
    eval_samples: int = 200
    learning_rate: float = 1e-3
    # LSH settings for the SLIDE output layer.
    hash_family: str = "simhash"
    k: int = 6
    l: int = 25
    bucket_size: int = 64
    target_active_fraction: float = 0.05
    rebuild_initial_period: int = 20
    sampled_softmax_fraction: float = 0.2
    # Depth of the background batch-assembly queue for SLIDE training runs
    # (0 = assemble batches inline; see repro.data.BatchPrefetcher).
    prefetch_depth: int = 0
    # Worker processes for SLIDE training runs (1 = single-process; > 1
    # trains through the shared-memory process-HOGWILD path, see
    # repro.parallel.sharedmem).
    num_processes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0 or self.batch_size <= 0 or self.epochs <= 0:
            raise ValueError("hidden_dim, batch_size and epochs must be positive")
        if not 0 < self.target_active_fraction <= 1:
            raise ValueError("target_active_fraction must lie in (0, 1]")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if self.num_processes < 1:
            raise ValueError("num_processes must be positive")

    @property
    def target_active(self) -> int:
        return max(8, int(round(self.target_active_fraction * self.dataset.label_dim)))


@dataclass
class MeasuredRun:
    """Everything recorded while training one framework on one dataset."""

    framework: str
    iterations: np.ndarray
    accuracies: np.ndarray
    losses: np.ndarray
    per_iteration_work: list[WorkloadCounts]
    avg_active_output: float
    final_accuracy: float

    def simulate(self, simulator: WallClockSimulator, label: str | None = None) -> SimulatedRun:
        """Attribute wall-clock time with ``simulator``'s device profile."""
        return simulator.simulate(
            label or self.framework,
            self.per_iteration_work,
            list(self.accuracies),
            list(self.losses),
        )


class HeadToHeadExperiment:
    """Train SLIDE and the baselines on one synthetic dataset."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.dataset: SyntheticXCDataset = generate_synthetic_xc(config.dataset)
        self._rng = derive_rng(config.seed, stream=91)
        self.avg_input_nnz = float(
            np.mean([ex.features.nnz for ex in self.dataset.train])
        )

    # ------------------------------------------------------------------
    # Model builders
    # ------------------------------------------------------------------
    def build_slide_network(
        self,
        sampling_strategy: str = "vanilla",
        hash_family: str | None = None,
        insertion_policy: str = "fifo",
        rebuild_decay: float = 0.3,
    ) -> SlideNetwork:
        cfg = self.config
        lsh = LSHConfig(
            hash_family=hash_family or cfg.hash_family,  # type: ignore[arg-type]
            k=cfg.k,
            l=cfg.l,
            bucket_size=cfg.bucket_size,
            insertion_policy=insertion_policy,  # type: ignore[arg-type]
        )
        layers = (
            LayerConfig(size=cfg.hidden_dim, activation="relu", lsh=None),
            LayerConfig(
                size=cfg.dataset.label_dim,
                activation="softmax",
                lsh=lsh,
                sampling=SamplingConfig(
                    strategy=sampling_strategy,  # type: ignore[arg-type]
                    target_active=cfg.target_active,
                    include_labels=True,
                ),
                rebuild=RebuildScheduleConfig(
                    initial_period=cfg.rebuild_initial_period, decay=rebuild_decay
                ),
            ),
        )
        network_cfg = SlideNetworkConfig(
            input_dim=cfg.dataset.feature_dim, layers=layers, seed=cfg.seed
        )
        return SlideNetwork(network_cfg)

    def training_config(self, batch_size: int | None = None) -> TrainingConfig:
        cfg = self.config
        return TrainingConfig(
            batch_size=batch_size or cfg.batch_size,
            epochs=cfg.epochs,
            optimizer=OptimizerConfig(name="adam", learning_rate=cfg.learning_rate),
            eval_every=cfg.eval_every,
            eval_samples=cfg.eval_samples,
            seed=cfg.seed,
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run_slide(
        self,
        batch_size: int | None = None,
        sampling_strategy: str = "vanilla",
        hash_family: str | None = None,
        insertion_policy: str = "fifo",
        optimized: bool = False,
    ) -> MeasuredRun:
        """Train SLIDE and record measured work per iteration.

        ``optimized=True`` applies the Hugepages + SIMD speed-up factor the
        paper measures in Section 5.4 (the work counts are identical; only
        the attributed per-operation cost shrinks), producing the
        "SLIDE-CPU Optimized" curve of Figure 10.
        """
        cfg = self.config
        network = self.build_slide_network(
            sampling_strategy=sampling_strategy,
            hash_family=hash_family,
            insertion_policy=insertion_policy,
        )
        trainer = SlideTrainer(
            network,
            self.training_config(batch_size),
            prefetch_depth=cfg.prefetch_depth,
            num_processes=cfg.num_processes,
        )
        history = trainer.train(self.dataset.train, self.dataset.test)

        batch = batch_size or cfg.batch_size
        works = []
        active_per_sample = []
        for record in history.records:
            avg_active = record.active_neurons / max(record.batch_size, 1) - cfg.hidden_dim
            avg_active = max(avg_active, 1.0)
            active_per_sample.append(avg_active)
            work = slide_iteration_work(
                batch_size=record.batch_size,
                avg_input_nnz=self.avg_input_nnz,
                hidden_dim=cfg.hidden_dim,
                avg_active_output=avg_active,
                k=cfg.k,
                l=cfg.l,
                output_dim=cfg.dataset.label_dim,
            )
            if optimized:
                work = work.scaled(1.0 / HUGEPAGES_SPEEDUP)
            works.append(work)

        accuracies = self._carry_forward_accuracies(history)
        label = "SLIDE-CPU Optimized" if optimized else "SLIDE-CPU"
        return MeasuredRun(
            framework=label,
            iterations=np.arange(1, len(history.records) + 1),
            accuracies=accuracies,
            losses=history.losses(),
            per_iteration_work=works,
            avg_active_output=float(np.mean(active_per_sample)) if active_per_sample else 0.0,
            final_accuracy=history.final_accuracy() or 0.0,
        )

    def run_dense(self, batch_size: int | None = None) -> MeasuredRun:
        """Train the full-softmax dense baseline ("TF")."""
        cfg = self.config
        network = DenseNetwork(
            DenseNetworkConfig(
                input_dim=cfg.dataset.feature_dim,
                hidden_dim=cfg.hidden_dim,
                output_dim=cfg.dataset.label_dim,
                optimizer=OptimizerConfig(name="adam", learning_rate=cfg.learning_rate),
                seed=cfg.seed,
            )
        )
        return self._run_baseline(network, "TF-dense", batch_size)

    def run_sampled_softmax(
        self, batch_size: int | None = None, sample_fraction: float | None = None
    ) -> MeasuredRun:
        """Train the static sampled-softmax baseline ("TF-GPU SSM")."""
        cfg = self.config
        network = SampledSoftmaxNetwork(
            SampledSoftmaxConfig(
                input_dim=cfg.dataset.feature_dim,
                hidden_dim=cfg.hidden_dim,
                output_dim=cfg.dataset.label_dim,
                sample_fraction=sample_fraction or cfg.sampled_softmax_fraction,
                optimizer=OptimizerConfig(name="adam", learning_rate=cfg.learning_rate),
                seed=cfg.seed,
            )
        )
        return self._run_baseline(network, "Sampled Softmax", batch_size)

    # ------------------------------------------------------------------
    # Simulation views
    # ------------------------------------------------------------------
    def simulate_standard_devices(
        self,
        slide_run: MeasuredRun,
        dense_run: MeasuredRun,
        cores: int = 44,
    ) -> dict[str, SimulatedRun]:
        """The Figure 5 trio: SLIDE on CPU, dense on V100, dense on CPU."""
        return {
            "SLIDE CPU": slide_run.simulate(
                WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores), "SLIDE CPU"
            ),
            "TF-GPU": dense_run.simulate(WallClockSimulator(TF_GPU_PROFILE), "TF-GPU"),
            "TF-CPU": dense_run.simulate(
                WallClockSimulator(TF_CPU_PROFILE, cores=cores), "TF-CPU"
            ),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_baseline(self, network, framework: str, batch_size: int | None) -> MeasuredRun:
        cfg = self.config
        training = self.training_config(batch_size)
        rng = derive_rng(cfg.seed, stream=92)
        examples = list(self.dataset.train)
        eval_pool = self.dataset.test[: cfg.eval_samples]

        iterations = []
        accuracies: list[float] = []
        losses = []
        works = []
        last_accuracy = 0.0
        iteration = 0
        for _epoch in range(training.epochs):
            order = np.arange(len(examples))
            if training.shuffle:
                rng.shuffle(order)
            for start in range(0, len(examples), training.batch_size):
                chunk = [examples[i] for i in order[start : start + training.batch_size]]
                if not chunk:
                    continue
                batch = SparseBatch.from_examples(
                    chunk,
                    feature_dim=cfg.dataset.feature_dim,
                    label_dim=cfg.dataset.label_dim,
                )
                metrics = network.train_batch(batch)
                iteration += 1
                if training.eval_every and iteration % training.eval_every == 0:
                    last_accuracy = evaluate_precision_at_1(network, eval_pool)
                iterations.append(iteration)
                accuracies.append(last_accuracy)
                losses.append(metrics["loss"])
                if framework == "Sampled Softmax":
                    works.append(
                        sampled_softmax_iteration_work(
                            batch_size=len(batch),
                            avg_input_nnz=self.avg_input_nnz,
                            hidden_dim=cfg.hidden_dim,
                            num_sampled=int(metrics.get("num_candidates", 1)),
                        )
                    )
                else:
                    works.append(
                        dense_iteration_work(
                            batch_size=len(batch),
                            avg_input_nnz=self.avg_input_nnz,
                            hidden_dim=cfg.hidden_dim,
                            output_dim=cfg.dataset.label_dim,
                        )
                    )
        final_accuracy = evaluate_precision_at_1(network, eval_pool)
        if accuracies:
            accuracies[-1] = max(accuracies[-1], final_accuracy)
        return MeasuredRun(
            framework=framework,
            iterations=np.asarray(iterations),
            accuracies=np.asarray(accuracies, dtype=np.float64),
            losses=np.asarray(losses, dtype=np.float64),
            per_iteration_work=works,
            avg_active_output=float(cfg.dataset.label_dim),
            final_accuracy=final_accuracy,
        )

    @staticmethod
    def _carry_forward_accuracies(history) -> np.ndarray:
        accuracies = []
        last = 0.0
        for record in history.records:
            if record.accuracy is not None:
                last = record.accuracy
            accuracies.append(last)
        if history.epoch_accuracy and accuracies:
            accuracies[-1] = max(accuracies[-1], history.epoch_accuracy[-1])
        return np.asarray(accuracies, dtype=np.float64)


def project_run_to_paper_scale(
    run: MeasuredRun,
    dims: PaperScaleDims,
    batch_size: int | None = None,
) -> MeasuredRun:
    """Re-express a measured run's per-iteration work at the paper's scale.

    The accuracy/loss/iteration series are kept verbatim (they come from real
    training on the scaled synthetic data); only the
    :class:`~repro.perf.cost_model.WorkloadCounts` are recomputed for the
    full-scale dimensions in ``dims``.  The framework is inferred from
    ``run.framework``: SLIDE runs get the sparse active-output workload,
    sampled-softmax runs get the 20 %-candidate workload, and everything else
    is charged the dense full-softmax workload.
    """
    batch = batch_size or dims.batch_size
    name = run.framework.lower()
    works: list[WorkloadCounts] = []
    for _ in run.per_iteration_work:
        if "slide" in name:
            work = slide_iteration_work(
                batch_size=batch,
                avg_input_nnz=dims.feature_nnz,
                hidden_dim=dims.hidden_dim,
                avg_active_output=dims.avg_active_output,
                k=dims.k,
                l=dims.l,
                output_dim=dims.output_dim,
            )
            if "optimized" in name:
                work = work.scaled(1.0 / HUGEPAGES_SPEEDUP)
        elif "sampled" in name or "ssm" in name:
            work = sampled_softmax_iteration_work(
                batch_size=batch,
                avg_input_nnz=dims.feature_nnz,
                hidden_dim=dims.hidden_dim,
                num_sampled=max(1, int(dims.sampled_softmax_fraction * dims.output_dim)),
            )
        else:
            work = dense_iteration_work(
                batch_size=batch,
                avg_input_nnz=dims.feature_nnz,
                hidden_dim=dims.hidden_dim,
                output_dim=dims.output_dim,
            )
        works.append(work)
    return MeasuredRun(
        framework=run.framework,
        iterations=run.iterations,
        accuracies=run.accuracies,
        losses=run.losses,
        per_iteration_work=works,
        avg_active_output=dims.avg_active_output if "slide" in name else run.avg_active_output,
        final_accuracy=run.final_accuracy,
    )


def small_experiment_config(
    dataset: str = "delicious",
    scale: float = 1.0 / 2048.0,
    epochs: int = 2,
    seed: int = 0,
) -> ExperimentConfig:
    """A laptop-scale experiment config for tests and quick benches.

    ``dataset`` selects the Delicious-like or Amazon-like synthetic profile;
    ``scale`` shrinks the dataset dimensions (see
    :func:`repro.datasets.synthetic.delicious_like_config`).
    """
    from repro.datasets.synthetic import amazon_like_config, delicious_like_config

    if dataset == "delicious":
        ds = delicious_like_config(scale=scale, seed=seed)
        hash_family, k = "simhash", 6
    elif dataset == "amazon":
        ds = amazon_like_config(scale=scale, seed=seed)
        hash_family, k = "dwta", 5
    else:
        raise ValueError("dataset must be 'delicious' or 'amazon'")
    return ExperimentConfig(
        dataset=ds,
        hidden_dim=64,
        batch_size=32,
        epochs=epochs,
        eval_every=4,
        eval_samples=128,
        hash_family=hash_family,
        k=k,
        l=20,
        bucket_size=64,
        target_active_fraction=0.08,
        seed=seed,
    )
