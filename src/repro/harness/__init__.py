"""Experiment harness: shared head-to-head machinery plus one driver per
table and figure of the paper's evaluation section."""

from repro.harness.report import format_table, format_series, format_comparison
from repro.harness.experiment import (
    ExperimentConfig,
    HeadToHeadExperiment,
    MeasuredRun,
)
from repro.harness.serving_sweep import (
    ServingSweepResult,
    measure_engine,
    serving_accuracy_latency_sweep,
)
from repro.harness.scaling import (
    ScalingRun,
    available_cores,
    measure_process_scaling,
)
from repro.harness import figures, tables

__all__ = [
    "ScalingRun",
    "available_cores",
    "measure_process_scaling",
    "format_table",
    "format_series",
    "format_comparison",
    "ExperimentConfig",
    "HeadToHeadExperiment",
    "MeasuredRun",
    "ServingSweepResult",
    "measure_engine",
    "serving_accuracy_latency_sweep",
    "figures",
    "tables",
]
