"""Experiment harness: shared head-to-head machinery plus one driver per
table and figure of the paper's evaluation section."""

from repro.harness.report import format_table, format_series, format_comparison
from repro.harness.experiment import (
    ExperimentConfig,
    HeadToHeadExperiment,
    MeasuredRun,
)
from repro.harness import figures, tables

__all__ = [
    "format_table",
    "format_series",
    "format_comparison",
    "ExperimentConfig",
    "HeadToHeadExperiment",
    "MeasuredRun",
    "figures",
    "tables",
]
