"""One driver function per figure of the paper's evaluation section.

Every function returns plain Python data (rows / series dictionaries) so the
benchmark harness can both time it and print the regenerated artefact with
:mod:`repro.harness.report`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import LSHConfig
from repro.harness.experiment import (
    ExperimentConfig,
    HeadToHeadExperiment,
    PaperScaleDims,
    project_run_to_paper_scale,
)
from repro.lsh.index import LSHIndex
from repro.metrics.convergence import convergence_time
from repro.perf.cost_model import dense_iteration_work, slide_iteration_work
from repro.perf.cpu_counters import slide_breakdown, tf_breakdown
from repro.perf.devices import SLIDE_CPU_PROFILE, TF_CPU_PROFILE, TF_GPU_PROFILE
from repro.perf.memory import HUGEPAGES_SPEEDUP
from repro.perf.simulator import WallClockSimulator
from repro.sampling.probability import hard_threshold_curve
from repro.sampling.strategies import (
    HardThresholdSampling,
    TopKSampling,
    VanillaSampling,
)
from repro.utils.rng import derive_rng

__all__ = [
    "figure4_sampling_strategy_timing",
    "figure5_time_vs_accuracy",
    "figure6_inefficiency_breakdown",
    "figure7_sampled_softmax",
    "figure8_batch_size_effect",
    "figure9_scalability",
    "figure10_hugepages_simd",
    "figure11_hard_threshold_tradeoff",
    "figure13_scalability_ratio",
]


# ----------------------------------------------------------------------
# Figure 4 / Figure 12 — sampling strategy overhead
# ----------------------------------------------------------------------
def figure4_sampling_strategy_timing(
    neuron_counts: tuple[int, ...] = (2000, 3000, 4000, 5000, 6000, 7000),
    dim: int = 128,
    k: int = 6,
    l: int = 20,
    queries: int = 20,
    seed: int = 0,
) -> list[dict[str, float | int | str]]:
    """Time Vanilla / TopK / Hard-threshold retrieval vs neuron count.

    Reproduces the relative ordering of Figures 4 and 12: Vanilla is cheapest,
    Hard-thresholding slightly more expensive, TopK clearly the most expensive
    (it pays a frequency sort), with the gap widening as the number of indexed
    neurons grows.
    """
    rng = derive_rng(seed)
    rows: list[dict[str, float | int | str]] = []
    strategies = {
        "Vanilla Sampling": VanillaSampling(rng=derive_rng(seed, 1)),
        "TopK Sampling": TopKSampling(rng=derive_rng(seed, 2)),
        "Hard Thresholding": HardThresholdSampling(threshold=2, rng=derive_rng(seed, 3)),
    }
    for num_neurons in neuron_counts:
        weights = rng.normal(size=(num_neurons, dim))
        index = LSHIndex(dim, LSHConfig(hash_family="simhash", k=k, l=l, bucket_size=128), seed=seed)
        index.build(weights)
        query_vectors = rng.normal(size=(queries, dim))
        target = max(32, num_neurons // 20)
        for name, strategy in strategies.items():
            start = time.perf_counter()
            retrieved = 0
            for q in range(queries):
                active = strategy.sample(index, query_vectors[q], target)
                retrieved += active.size
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "num_neurons": num_neurons,
                    "strategy": name,
                    "seconds_per_query": elapsed / queries,
                    "mean_retrieved": retrieved / queries,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 5 — SLIDE vs TF-GPU vs TF-CPU (time and iterations)
# ----------------------------------------------------------------------
def figure5_time_vs_accuracy(
    config: ExperimentConfig,
    cores: int = 44,
    paper_dims: PaperScaleDims | None = None,
) -> dict[str, object]:
    """Head-to-head time/iteration vs accuracy curves.

    Returns a dict with ``time_series`` and ``iteration_series`` mapping
    framework names to (x, y) tuples, plus summary convergence statistics.
    When ``paper_dims`` is given, the wall-clock attribution uses the paper's
    full-scale workload dimensions (see
    :func:`repro.harness.experiment.project_run_to_paper_scale`).
    """
    experiment = HeadToHeadExperiment(config)
    slide_run = experiment.run_slide()
    dense_run = experiment.run_dense()
    if paper_dims is not None:
        slide_run = project_run_to_paper_scale(slide_run, paper_dims)
        dense_run = project_run_to_paper_scale(dense_run, paper_dims)
    simulated = experiment.simulate_standard_devices(slide_run, dense_run, cores=cores)

    time_series = {
        name: (run.cumulative_seconds, run.accuracies) for name, run in simulated.items()
    }
    iteration_series = {
        "SLIDE CPU": (slide_run.iterations, slide_run.accuracies),
        "TF-GPU": (dense_run.iterations, dense_run.accuracies),
    }
    # The paper compares time to reach *the same accuracy level* ("at any
    # accuracy"), so the speed-ups below use a common target: just below the
    # lower of the two final accuracies.
    common_target = 0.95 * min(
        simulated["SLIDE CPU"].final_accuracy(), simulated["TF-GPU"].final_accuracy()
    )
    times_to_target = {
        name: run.time_to_accuracy(common_target) for name, run in simulated.items()
    }
    summary = []
    for name, run in simulated.items():
        summary.append(
            {
                "framework": name,
                "convergence_time_s": run.convergence_time(),
                "time_to_common_accuracy_s": times_to_target[name],
                "final_accuracy": run.final_accuracy(),
            }
        )
    slide_time = times_to_target["SLIDE CPU"]
    gpu_time = times_to_target["TF-GPU"]
    cpu_time = times_to_target["TF-CPU"]
    return {
        "time_series": time_series,
        "iteration_series": iteration_series,
        "summary": summary,
        "common_target_accuracy": common_target,
        "speedup_vs_gpu": (gpu_time / slide_time) if slide_time and gpu_time else float("nan"),
        "speedup_vs_cpu": (cpu_time / slide_time) if slide_time and cpu_time else float("nan"),
        "slide_avg_active_output": slide_run.avg_active_output,
        "output_dim": config.dataset.label_dim,
    }


# ----------------------------------------------------------------------
# Figure 6 — CPU inefficiency breakdown
# ----------------------------------------------------------------------
def figure6_inefficiency_breakdown(
    threads: tuple[int, ...] = (8, 16, 32),
    output_dim: int = 670_091,
    hidden_dim: int = 128,
    batch_size: int = 256,
    avg_active_output: float = 3000.0,
) -> list[dict[str, float | str]]:
    """Top-down pipeline-slot breakdown for TF-CPU and SLIDE (Figure 6)."""
    rows: list[dict[str, float | str]] = []
    for t in threads:
        rows.append(tf_breakdown(t, output_dim, hidden_dim, batch_size).as_row())
    for t in threads:
        rows.append(
            slide_breakdown(t, avg_active_output, hidden_dim, batch_size, output_dim).as_row()
        )
    return rows


# ----------------------------------------------------------------------
# Figure 7 — SLIDE vs Sampled Softmax
# ----------------------------------------------------------------------
def figure7_sampled_softmax(
    config: ExperimentConfig,
    cores: int = 44,
    paper_dims: PaperScaleDims | None = None,
) -> dict[str, object]:
    """SLIDE vs static sampled softmax, time- and iteration-wise."""
    experiment = HeadToHeadExperiment(config)
    slide_run = experiment.run_slide()
    ssm_run = experiment.run_sampled_softmax()
    # The active fraction is a property of the measured (scaled) run; record
    # it before any projection to paper-scale workload dimensions.
    slide_active_fraction = slide_run.avg_active_output / config.dataset.label_dim
    if paper_dims is not None:
        slide_run = project_run_to_paper_scale(slide_run, paper_dims)
        ssm_run = project_run_to_paper_scale(ssm_run, paper_dims)

    slide_sim = slide_run.simulate(
        WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores), "SLIDE CPU"
    )
    ssm_sim = ssm_run.simulate(WallClockSimulator(TF_GPU_PROFILE), "TF-GPU SSM")

    return {
        "time_series": {
            "SLIDE CPU": (slide_sim.cumulative_seconds, slide_sim.accuracies),
            "TF-GPU SSM": (ssm_sim.cumulative_seconds, ssm_sim.accuracies),
        },
        "iteration_series": {
            "SLIDE CPU": (slide_run.iterations, slide_run.accuracies),
            "TF-GPU SSM": (ssm_run.iterations, ssm_run.accuracies),
        },
        "final_accuracy": {
            "SLIDE CPU": slide_run.final_accuracy,
            "TF-GPU SSM": ssm_run.final_accuracy,
        },
        "active_fraction": {
            "SLIDE CPU": slide_active_fraction,
            "TF-GPU SSM": config.sampled_softmax_fraction,
        },
    }


# ----------------------------------------------------------------------
# Figure 8 — batch-size effect
# ----------------------------------------------------------------------
def figure8_batch_size_effect(
    config: ExperimentConfig,
    batch_sizes: tuple[int, ...] = (16, 32, 64),
    cores: int = 44,
    paper_dims: PaperScaleDims | None = None,
) -> list[dict[str, float | int | str]]:
    """Convergence time of SLIDE / TF-GPU / SSM across batch sizes (Figure 8)."""
    rows: list[dict[str, float | int | str]] = []
    for batch_size in batch_sizes:
        experiment = HeadToHeadExperiment(config)
        slide_run = experiment.run_slide(batch_size=batch_size)
        dense_run = experiment.run_dense(batch_size=batch_size)
        ssm_run = experiment.run_sampled_softmax(batch_size=batch_size)
        if paper_dims is not None:
            slide_run = project_run_to_paper_scale(slide_run, paper_dims, batch_size=batch_size)
            dense_run = project_run_to_paper_scale(dense_run, paper_dims, batch_size=batch_size)
            ssm_run = project_run_to_paper_scale(ssm_run, paper_dims, batch_size=batch_size)

        slide_sim = slide_run.simulate(WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores))
        gpu_sim = dense_run.simulate(WallClockSimulator(TF_GPU_PROFILE))
        ssm_sim = ssm_run.simulate(WallClockSimulator(TF_GPU_PROFILE))

        for name, sim in (
            ("SLIDE CPU", slide_sim),
            ("TF-GPU", gpu_sim),
            ("TF-GPU SSM", ssm_sim),
        ):
            rows.append(
                {
                    "batch_size": batch_size,
                    "framework": name,
                    "convergence_time_s": sim.convergence_time(),
                    "final_accuracy": sim.final_accuracy(),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 9 / Figure 13 — scalability with CPU cores
# ----------------------------------------------------------------------
def figure9_scalability(
    config: ExperimentConfig,
    core_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 44),
    paper_dims: PaperScaleDims | None = None,
) -> list[dict[str, float | int | str]]:
    """Convergence time vs core count for SLIDE, TF-CPU and TF-GPU.

    The per-iteration *work* is measured once (it does not depend on the core
    count); the device profiles then attribute time at each core count.
    """
    experiment = HeadToHeadExperiment(config)
    slide_run = experiment.run_slide()
    dense_run = experiment.run_dense()
    if paper_dims is not None:
        slide_run = project_run_to_paper_scale(slide_run, paper_dims)
        dense_run = project_run_to_paper_scale(dense_run, paper_dims)

    rows: list[dict[str, float | int | str]] = []
    gpu_sim = dense_run.simulate(WallClockSimulator(TF_GPU_PROFILE), "TF-GPU")
    gpu_time = gpu_sim.convergence_time()
    for cores in core_counts:
        slide_sim = slide_run.simulate(
            WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores), "SLIDE"
        )
        cpu_sim = dense_run.simulate(
            WallClockSimulator(TF_CPU_PROFILE, cores=cores), "TF-CPU"
        )
        rows.append(
            {
                "cores": cores,
                "SLIDE_convergence_s": slide_sim.convergence_time(),
                "TF-CPU_convergence_s": cpu_sim.convergence_time(),
                "TF-GPU_convergence_s": gpu_time,
            }
        )
    return rows


def figure13_scalability_ratio(
    scalability_rows: list[dict[str, float | int | str]]
) -> list[dict[str, float | int | str]]:
    """Ratio of convergence time to the best (max-core) time (Figure 13)."""
    if not scalability_rows:
        return []
    slide_best = min(float(r["SLIDE_convergence_s"]) for r in scalability_rows)
    cpu_best = min(float(r["TF-CPU_convergence_s"]) for r in scalability_rows)
    rows = []
    for r in scalability_rows:
        rows.append(
            {
                "cores": r["cores"],
                "SLIDE_ratio": float(r["SLIDE_convergence_s"]) / slide_best,
                "TF-CPU_ratio": float(r["TF-CPU_convergence_s"]) / cpu_best,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 10 — Hugepages + SIMD optimisation
# ----------------------------------------------------------------------
def figure10_hugepages_simd(
    config: ExperimentConfig,
    cores: int = 44,
    paper_dims: PaperScaleDims | None = None,
) -> dict[str, object]:
    """Plain SLIDE vs cache-optimised SLIDE vs TF-GPU (Figure 10)."""
    experiment = HeadToHeadExperiment(config)
    slide_run = experiment.run_slide()
    optimized_run = experiment.run_slide(optimized=True)
    dense_run = experiment.run_dense()
    if paper_dims is not None:
        slide_run = project_run_to_paper_scale(slide_run, paper_dims)
        optimized_run = project_run_to_paper_scale(optimized_run, paper_dims)
        dense_run = project_run_to_paper_scale(dense_run, paper_dims)

    slide_sim = slide_run.simulate(
        WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores), "SLIDE-CPU"
    )
    optimized_sim = optimized_run.simulate(
        WallClockSimulator(SLIDE_CPU_PROFILE, cores=cores), "SLIDE-CPU Optimized"
    )
    gpu_sim = dense_run.simulate(WallClockSimulator(TF_GPU_PROFILE), "TF-GPU")

    plain = slide_sim.convergence_time()
    optimized = optimized_sim.convergence_time()
    return {
        "time_series": {
            "SLIDE-CPU": (slide_sim.cumulative_seconds, slide_sim.accuracies),
            "SLIDE-CPU Optimized": (
                optimized_sim.cumulative_seconds,
                optimized_sim.accuracies,
            ),
            "TF-GPU": (gpu_sim.cumulative_seconds, gpu_sim.accuracies),
        },
        "optimized_speedup": plain / optimized if optimized else float("nan"),
        "expected_speedup": HUGEPAGES_SPEEDUP,
        "speedup_vs_gpu": gpu_sim.convergence_time() / optimized if optimized else float("nan"),
    }


# ----------------------------------------------------------------------
# Figure 11 — hard-thresholding trade-off curves
# ----------------------------------------------------------------------
def figure11_hard_threshold_tradeoff(
    k: int = 1,
    l: int = 10,
    thresholds: tuple[int, ...] = (1, 3, 5, 7, 9),
    num_points: int = 17,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Selection probability vs collision probability for several ``m`` values.

    Exactly reproduces Figure 11 (it is a closed-form plot): with ``L=10``
    tables, higher frequency thresholds ``m`` suppress low-collision (bad)
    neurons but also lose some high-collision (good) ones.
    """
    probabilities = np.linspace(0.1, 0.9, num_points)
    series = {}
    for m in thresholds:
        p_values, selected = hard_threshold_curve(k, l, m, probabilities)
        series[f"m={m}"] = (p_values, selected)
    return series
