"""Payload JSON schemas, one per registered benchmark.

These describe the *payload* half of each artifact (the envelope schema is
shared, see :mod:`repro.reports.artifacts`).  They are deliberately strict
about the keys and types the repo's claims rest on — a hand-edited,
truncated or shape-drifted ``BENCH_*.json`` must fail the golden-artifact
contract test — while config blocks stay open (``additionalProperties``)
so adding a knob is not a schema migration.
"""

from __future__ import annotations

from typing import Any

__all__ = ["PAYLOAD_SCHEMAS"]

NUM: dict[str, Any] = {"type": "number"}
POS: dict[str, Any] = {"type": "number", "minimum": 0}
FRACTION: dict[str, Any] = {"type": "number", "minimum": 0, "maximum": 1}
INT: dict[str, Any] = {"type": "integer"}
NAT: dict[str, Any] = {"type": "integer", "minimum": 0}
STR: dict[str, Any] = {"type": "string"}
BOOL: dict[str, Any] = {"type": "boolean"}
# Coerced non-finite floats (repro.reports.artifacts.to_jsonable).
MAYBE_NUM: dict[str, Any] = {"type": ["number", "string"]}
CONFIG: dict[str, Any] = {"type": "object"}
NUM_LIST: dict[str, Any] = {"type": "array", "items": NUM}


def rows(required: dict[str, Any], *, min_items: int = 1, extra: bool = True) -> dict[str, Any]:
    """A non-empty array of row objects with the given required columns."""
    return {
        "type": "array",
        "minItems": min_items,
        "items": {
            "type": "object",
            "required": sorted(required),
            "properties": required,
            "additionalProperties": extra,
        },
    }


def series(x_name: str = "x", y_name: str = "y") -> dict[str, Any]:
    """``{label: {x: [...], y: [...]}}`` curve families."""
    return {
        "type": "object",
        "patternProperties": {
            ".": {
                "type": "object",
                "required": [x_name, y_name],
                "properties": {x_name: NUM_LIST, y_name: NUM_LIST},
            }
        },
    }


_LATENCY = {
    "type": "object",
    "required": ["p50", "p99", "p999", "mean", "max"],
    "properties": {"p50": POS, "p99": POS, "p999": POS, "mean": POS, "max": POS},
}

_HEAD_TO_HEAD = {
    "type": "object",
    "required": [
        "summary",
        "speedup_vs_gpu",
        "speedup_vs_cpu",
        "common_target_accuracy",
        "time_series",
        "iteration_series",
    ],
    "properties": {
        "summary": rows(
            {
                "framework": STR,
                "convergence_time_s": POS,
                "time_to_common_accuracy_s": MAYBE_NUM,
                "final_accuracy": FRACTION,
            }
        ),
        "speedup_vs_gpu": MAYBE_NUM,
        "speedup_vs_cpu": MAYBE_NUM,
        "common_target_accuracy": FRACTION,
        "time_series": series("time_s", "precision_at_1"),
        "iteration_series": series("iteration", "precision_at_1"),
    },
}

_FIG7_SIDE = {
    "type": "object",
    "required": ["final_accuracy", "active_fraction", "accuracy_advantage"],
    "properties": {
        "final_accuracy": {
            "type": "object",
            "required": ["slide", "sampled_softmax"],
            "properties": {"slide": FRACTION, "sampled_softmax": FRACTION},
        },
        "active_fraction": {
            "type": "object",
            "required": ["slide", "sampled_softmax"],
            "properties": {"slide": FRACTION, "sampled_softmax": FRACTION},
        },
        "accuracy_advantage": NUM,
        "time_series": series("time_s", "precision_at_1"),
        "iteration_series": series("iteration", "precision_at_1"),
    },
}

_SWEEP_ROW = {
    "offered_qps": POS,
    "achieved_qps": POS,
    "sent": NAT,
    "completed": NAT,
    "errors": NAT,
    "shed_rate": FRACTION,
    "latency_ms": _LATENCY,
    "load_fraction": POS,
}

_TRAFFIC = {"type": "object", "required": ["completed", "errors"],
            "properties": {"completed": NAT, "errors": NAT}}

PAYLOAD_SCHEMAS: dict[str, dict[str, Any]] = {
    "fig4_sampling": {
        "type": "object",
        "required": ["config", "rows", "total_seconds_per_query"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "num_neurons": NAT,
                    "strategy": STR,
                    "seconds_per_query": POS,
                    "mean_retrieved": POS,
                }
            ),
            "total_seconds_per_query": {
                "type": "object",
                "patternProperties": {".": POS},
            },
        },
    },
    "fig5_time_accuracy": {
        "type": "object",
        "required": ["config", "delicious", "amazon"],
        "properties": {"config": CONFIG, "delicious": _HEAD_TO_HEAD, "amazon": _HEAD_TO_HEAD},
    },
    "fig6_inefficiencies": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "framework": STR,
                    "threads": NAT,
                    "front_end_bound": FRACTION,
                    "memory_bound": FRACTION,
                    "retiring": FRACTION,
                    "core_bound": FRACTION,
                    "utilization": FRACTION,
                },
                min_items=2,
            ),
        },
    },
    "fig7_sampled_softmax": {
        "type": "object",
        "required": ["config", "delicious", "amazon"],
        "properties": {"config": CONFIG, "delicious": _FIG7_SIDE, "amazon": _FIG7_SIDE},
    },
    "fig8_batch_size": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "batch_size": NAT,
                    "framework": STR,
                    "convergence_time_s": POS,
                    "final_accuracy": FRACTION,
                },
                min_items=3,
            ),
        },
    },
    "fig9_scalability": {
        "type": "object",
        "required": ["measured", "precision_gap_vs_baseline"],
        "properties": {
            "measured": {
                "type": "object",
                "required": [
                    "available_cores",
                    "rows",
                    "baseline_precision_at_1",
                    "max_measured_speedup",
                    "cores_limit_speedup",
                ],
                "properties": {
                    "available_cores": {"type": "integer", "minimum": 1},
                    "rows": rows(
                        {
                            "processes": {"type": "integer", "minimum": 1},
                            "wall_time_s": POS,
                            "samples_per_sec": POS,
                            "speedup_vs_1": POS,
                            "parallel_efficiency": POS,
                            "precision_at_1": FRACTION,
                            "cpu_utilization": POS,
                        }
                    ),
                    "baseline_precision_at_1": FRACTION,
                    "max_measured_speedup": POS,
                    "cores_limit_speedup": BOOL,
                },
            },
            "precision_gap_vs_baseline": {"type": "object", "patternProperties": {".": POS}},
            "projection": {"type": "object"},
        },
    },
    "fig10_hugepages_simd": {
        "type": "object",
        "required": ["config", "optimized_speedup", "expected_speedup", "speedup_vs_gpu"],
        "properties": {
            "config": CONFIG,
            "optimized_speedup": MAYBE_NUM,
            "expected_speedup": POS,
            "speedup_vs_gpu": MAYBE_NUM,
            "time_series": series("time_s", "precision_at_1"),
        },
    },
    "fig11_hard_threshold": {
        "type": "object",
        "required": ["config", "series"],
        "properties": {
            "config": CONFIG,
            "series": {
                "type": "object",
                "patternProperties": {
                    "^m=": {
                        "type": "object",
                        "required": ["collision_p", "selection_p"],
                        "properties": {
                            "collision_p": {"type": "array", "items": FRACTION, "minItems": 2},
                            "selection_p": {"type": "array", "items": FRACTION, "minItems": 2},
                        },
                    }
                },
            },
        },
    },
    "table1_datasets": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "dataset": STR,
                    "feature_dim": {"type": "integer", "minimum": 1},
                    "label_dim": {"type": "integer", "minimum": 1},
                    "training_size": NAT,
                    "testing_size": NAT,
                    "source": {"enum": ["paper", "synthetic"]},
                },
                min_items=4,
            ),
        },
    },
    "table2_core_utilization": {
        "type": "object",
        "required": ["measured", "calibrated_model", "paper_table2"],
        "properties": {
            "measured": {
                "type": "object",
                "required": ["available_cores", "rows"],
                "properties": {
                    "available_cores": {"type": "integer", "minimum": 1},
                    "rows": rows(
                        {
                            "processes": {"type": "integer", "minimum": 1},
                            "SLIDE_utilization_measured": POS,
                            "wall_time_s": POS,
                            "speedup_vs_1": POS,
                        }
                    ),
                },
            },
            "calibrated_model": rows(
                {
                    "threads": NAT,
                    "TF-CPU_utilization_calibrated": FRACTION,
                    "SLIDE_utilization_calibrated": FRACTION,
                    "TF-CPU_utilization_model": FRACTION,
                    "SLIDE_utilization_model": FRACTION,
                }
            ),
            "paper_table2": {"type": "object"},
        },
    },
    "table3_insertion": {
        "type": "object",
        "required": ["config", "rows", "min_batched_speedup_vs_per_item"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "policy": STR,
                    "num_neurons": NAT,
                    "hash_s": POS,
                    "per_item_insert_s": POS,
                    "insertion_to_ht_s": POS,
                    "full_insertion_s": POS,
                    "batched_items_per_s": POS,
                    "batched_speedup_vs_per_item": POS,
                },
                min_items=2,
            ),
            "min_batched_speedup_vs_per_item": POS,
        },
    },
    "table4_hugepages_counters": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "metric": STR,
                    "without_hugepages": POS,
                    "with_hugepages": POS,
                    "improvement_factor": MAYBE_NUM,
                },
                min_items=3,
            ),
        },
    },
    "ablation_hash_families": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "hash_family": STR,
                    "final_accuracy": FRACTION,
                    "avg_active_output": POS,
                    "active_fraction": FRACTION,
                },
                min_items=2,
            ),
        },
    },
    "ablation_rebuild_schedule": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "schedule": STR,
                    "final_accuracy": FRACTION,
                    "rebuilds": NAT,
                    "iterations": NAT,
                },
                min_items=2,
            ),
        },
    },
    "ablation_sampling_strategies": {
        "type": "object",
        "required": ["config", "rows"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "strategy": STR,
                    "final_accuracy": FRACTION,
                    "avg_active_output": POS,
                },
                min_items=3,
            ),
        },
    },
    "train_throughput": {
        "type": "object",
        "required": ["config", "rows", "phase_breakdown", "speedup_batched_vs_per_sample"],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {
                    "mode": {"enum": ["dense", "sparse_per_sample", "sparse_batched"]},
                    "samples_per_sec": POS,
                    "wall_time_s": POS,
                    "precision_at_1": FRACTION,
                    "active_fraction": FRACTION,
                    "rebuild_share": FRACTION,
                },
                min_items=3,
            ),
            "phase_breakdown": {
                "type": "object",
                "patternProperties": {".": {"type": "object", "patternProperties": {".": POS}}},
            },
            "speedup_batched_vs_per_sample": POS,
        },
    },
    "data_pipeline": {
        "type": "object",
        "required": [
            "config",
            "rows",
            "speedup_sharded_vs_eager",
            "max_open_shards_during_stream",
            "training_loss_parity_bitwise",
        ],
        "properties": {
            "config": CONFIG,
            "rows": rows(
                {"stage": STR, "wall_time_s": POS, "examples_per_sec": POS},
                min_items=3,
            ),
            "speedup_sharded_vs_eager": POS,
            "max_open_shards_during_stream": NAT,
            "training_loss_parity_bitwise": BOOL,
        },
    },
    "serving_latency": {
        "type": "object",
        "required": ["config", "capacity", "qps_sweep", "hot_reload", "parity"],
        "properties": {
            "config": CONFIG,
            "capacity": {
                "type": "object",
                "required": ["sustained_qps"],
                "properties": {"sustained_qps": POS, "probe_shed_rate": FRACTION},
            },
            "qps_sweep": rows(dict(_SWEEP_ROW), min_items=2),
            "hot_reload": {
                "type": "object",
                "required": ["num_swaps", "swaps", "incremental_swaps"],
                "properties": {
                    "num_swaps": NAT,
                    "incremental_swaps": NAT,
                    "swaps": rows(
                        {"blip_ms": POS, "full_rebuild": BOOL, "version": STR},
                        min_items=1,
                    ),
                },
            },
            "parity": {
                "type": "object",
                "required": ["bitwise_topk_equal_to_cold_load"],
                "properties": {"bitwise_topk_equal_to_cold_load": BOOL},
            },
        },
    },
    "fault_recovery": {
        "type": "object",
        "required": ["worker_kill", "parent_kill_resume"],
        "properties": {
            "worker_kill": {
                "type": "object",
                "required": ["baseline", "killed", "precision_gap"],
                "properties": {
                    "baseline": {
                        "type": "object",
                        "required": ["precision_at_1"],
                        "properties": {"precision_at_1": FRACTION},
                    },
                    "killed": {
                        "type": "object",
                        "required": ["precision_at_1", "restarts", "mean_recovery_latency_s"],
                        "properties": {
                            "precision_at_1": FRACTION,
                            "restarts": NAT,
                            "lost_batches": NAT,
                            "mean_recovery_latency_s": POS,
                        },
                    },
                    "precision_gap": POS,
                },
            },
            "parent_kill_resume": {
                "type": "object",
                "required": [
                    "killed_mid_run",
                    "loss_trajectory_matches",
                    "final_weights_match",
                    "recovery_wall_s",
                ],
                "properties": {
                    "killed_mid_run": BOOL,
                    "loss_trajectory_matches": BOOL,
                    "final_weights_match": BOOL,
                    "recovery_wall_s": POS,
                    "max_loss_divergence": POS,
                },
            },
        },
    },
    "router_failover": {
        "type": "object",
        "required": ["config", "capacity", "baseline", "failover", "degradation_ladder", "chaos"],
        "properties": {
            "config": CONFIG,
            "capacity": {"type": "object"},
            "baseline": {
                "type": "object",
                "required": ["availability"],
                "properties": {"availability": FRACTION, "traffic": _TRAFFIC},
            },
            "failover": {
                "type": "object",
                "required": ["availability", "detection_ms", "killed_replica"],
                "properties": {
                    "availability": FRACTION,
                    "detection_ms": POS,
                    "killed_replica": STR,
                },
            },
            "degradation_ladder": rows(
                {
                    "level": NAT,
                    "precision_at_1": FRACTION,
                    "p99_ms": POS,
                    "mean_candidates_scored": POS,
                },
                min_items=2,
            ),
            "chaos": {
                "type": "object",
                "required": ["availability", "injections_fired"],
                "properties": {"availability": FRACTION, "injections_fired": NAT},
            },
        },
    },
}
