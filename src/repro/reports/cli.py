"""Drivers for the report registry: the ``python -m repro.reports`` CLI and
the thin per-bench ``main()`` shim every ``benchmarks/bench_*.py`` keeps.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Sequence

from repro.reports.artifacts import write_artifact
from repro.reports.docs_sync import check_paper_map, sync_paper_map
from repro.reports.registry import all_specs, bench_ids, get_spec
from repro.reports.spec import REPO_ROOT, BenchSpec
from repro.reports.trend import check_trend

__all__ = ["main", "bench_main", "run_bench"]


def run_bench(
    spec: BenchSpec,
    smoke: bool,
    out_dir: Path | None = None,
    param_overrides: dict[str, Any] | None = None,
    out_path: Path | None = None,
) -> tuple[dict[str, Any], Path, list[str]]:
    """Generate, stamp, validate and write one artifact.

    Returns ``(payload, written_path, checker_problems)``.  Schema problems
    raise; checker problems are returned so the caller decides severity.
    """
    params = spec.params_for(smoke)
    if param_overrides:
        params.update(param_overrides)
    payload = spec.generator()(params)
    target = out_path if out_path is not None else spec.artifact_path(out_dir)
    written = write_artifact(spec, payload, mode="smoke" if smoke else "full", path=target)
    problems: list[str] = []
    check_fn = spec.check_fn()
    if check_fn is not None:
        problems = list(check_fn(payload, smoke))
    return payload, written, problems


def _parse_param(text: str) -> tuple[str, Any]:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"--param wants key=value, got {text!r}")
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _print_payload(spec: BenchSpec, payload: dict[str, Any]) -> None:
    printer = getattr(spec.load_module(), "print_report", None)
    if callable(printer):
        printer(payload)
    else:
        print(json.dumps(payload, indent=2, default=str)[:2000])


def bench_main(bench_id: str, argv: Sequence[str] | None = None) -> int:
    """Standalone entry point for one bench script (kept for compatibility).

    ``python benchmarks/bench_x.py [--smoke] [--out FILE] [--param k=v ...]``
    runs the registered generator, writes the schema-validated artifact and
    exits non-zero when the bench's own invariant checker reports problems.
    """
    spec = get_spec(bench_id)
    parser = argparse.ArgumentParser(description=spec.title)
    parser.add_argument("--smoke", action="store_true", help="CI-scale parameters")
    parser.add_argument("--out", type=Path, default=None, help="artifact path override")
    parser.add_argument(
        "--param",
        action="append",
        type=_parse_param,
        default=[],
        metavar="KEY=VALUE",
        help="override one generator parameter (value parsed as JSON, else string)",
    )
    args = parser.parse_args(argv)
    payload, written, problems = run_bench(
        spec,
        smoke=args.smoke,
        param_overrides=dict(args.param),
        out_path=args.out,
    )
    _print_payload(spec, payload)
    print(f"wrote {written}")
    if problems:
        print(f"{bench_id} checks FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    return 0


def _run_isolated(spec: BenchSpec, smoke: bool, out_dir: Path | None) -> list[str]:
    """Run one bench in a fresh child process; returns failure strings.

    Isolation matters for two reasons: the per-spec ``timeout_s`` becomes
    enforceable (the child is killed, not abandoned), and benches that fork
    worker processes (fig9, fault_recovery) never inherit thread state from
    an earlier bench's serving runtime — fork-after-threads deadlocks were
    observed when the whole sweep shared one interpreter.
    """
    argv = [sys.executable, "-m", "repro.reports", "--run", spec.bench_id, "--in-process"]
    if smoke:
        argv.append("--smoke")
    if out_dir is not None:
        argv.extend(["--out-dir", str(out_dir)])
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    try:
        result = subprocess.run(
            argv, capture_output=True, text=True, timeout=spec.timeout_s, env=env
        )
    except subprocess.TimeoutExpired:
        return [f"{spec.bench_id}: timed out after {spec.timeout_s:.0f}s"]
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        detail = result.stderr.strip().splitlines()
        tail = detail[-1] if detail else f"exit code {result.returncode}"
        return [f"{spec.bench_id}: {tail}"]
    return []


def _run_one(spec: BenchSpec, smoke: bool, out_dir: Path | None) -> list[str]:
    """Run one bench in this interpreter; returns failure strings."""
    started = time.perf_counter()
    try:
        _, written, problems = run_bench(spec, smoke=smoke, out_dir=out_dir)
    except Exception as exc:
        print(f"[FAIL] {spec.bench_id}: {exc}", file=sys.stderr)
        return [f"{spec.bench_id}: generation failed: {exc}"]
    elapsed = time.perf_counter() - started
    mode = "smoke" if smoke else "full"
    status = "ok" if not problems else "CHECK-FAILED"
    print(f"[{status}] {spec.bench_id} ({mode}, {elapsed:.1f}s) -> {written}")
    for problem in problems:
        print(f"    - {problem}", file=sys.stderr)
    return [f"{spec.bench_id}: {problem}" for problem in problems]


def _cmd_list() -> int:
    width = max(len(spec.bench_id) for spec in all_specs())
    print(f"{'BENCH ID':{width}}  {'ANCHOR':24}  {'STATUS':8}  {'GATES':5}  ARTIFACT")
    for spec in all_specs():
        status = "measured" if spec.measured else "modelled"
        print(
            f"{spec.bench_id:{width}}  {spec.paper_anchor:24.24}  {status:8}  "
            f"{len(spec.gates):5}  {spec.artifact}"
        )
    print(f"{len(all_specs())} registered benchmark(s)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reports",
        description="Registry-driven benchmark factory with schema-validated "
        "artifacts and perf-regression gating.",
    )
    parser.add_argument("--list", action="store_true", help="list registered benchmarks")
    parser.add_argument(
        "--run", action="append", default=[], metavar="ID", help="run one bench (repeatable)"
    )
    parser.add_argument("--all", action="store_true", help="run every registered bench")
    parser.add_argument("--smoke", action="store_true", help="CI-scale parameters")
    parser.add_argument(
        "--check",
        action="store_true",
        help="trend-gate freshly generated artifacts against the committed "
        "BENCH_*.json baselines (generation goes to a temp dir unless "
        "--out-dir is given, so the baselines are not clobbered)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=None, help="directory for generated artifacts"
    )
    parser.add_argument(
        "--sync-docs",
        action="store_true",
        help="rewrite the generated registry-status table in docs/paper_map.md",
    )
    parser.add_argument(
        "--check-docs",
        action="store_true",
        help="fail if docs/paper_map.md's status table is out of sync",
    )
    parser.add_argument(
        "--in-process",
        action="store_true",
        help="run generators in this interpreter instead of one child process "
        "per bench (no timeout enforcement; used internally and for debugging)",
    )
    args = parser.parse_args(argv)

    if args.sync_docs:
        changed = sync_paper_map()
        print("docs/paper_map.md status table " + ("rewritten" if changed else "already in sync"))
        return 0
    if args.check_docs:
        problems = check_paper_map()
        if problems:
            print("registry docs check FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("registry docs check OK")
        return 0
    if args.list:
        return _cmd_list()

    if not args.run and not args.all:
        parser.print_help()
        return 2

    ids = bench_ids() if args.all else args.run
    specs = [get_spec(bench_id) for bench_id in ids]

    out_dir = args.out_dir
    temp_ctx = None
    if args.check and out_dir is None:
        temp_ctx = tempfile.TemporaryDirectory(prefix="repro-reports-")
        out_dir = Path(temp_ctx.name)
    try:
        failures: list[str] = []
        runner = _run_one if args.in_process else _run_isolated
        for spec in specs:
            failures.extend(runner(spec, args.smoke, out_dir))

        if args.check:
            report = check_trend(specs, fresh_dir=out_dir or REPO_ROOT)
            print(report.describe())
            if not report.ok:
                failures.append("trend gating failed")

        if failures:
            print(f"{len(failures)} failure(s):", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0
    finally:
        if temp_ctx is not None:
            temp_ctx.cleanup()
