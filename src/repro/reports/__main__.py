"""``python -m repro.reports`` — drive the benchmark registry."""

from repro.reports.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
