"""Declarative benchmark specifications for the report registry.

A :class:`BenchSpec` is the single source of truth for one figure/table/
ablation reproduction: which generator produces it, where the artifact
lives, what shape the payload must have (JSON schema), which parameters the
smoke and full modes use, whether the numbers are *measured* on this host or
derived from a calibrated model, and which metrics are gated against the
committed baseline by :mod:`repro.reports.trend`.

Generators live in ``benchmarks/bench_<module>.py`` as a pure
``run(params) -> dict`` function (no I/O, no envelope — the registry runner
stamps and validates).  They are resolved lazily so importing the registry
never pays for numpy-heavy bench imports.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Any, Callable

__all__ = [
    "MetricGate",
    "BenchSpec",
    "BENCHMARKS_DIR",
    "REPO_ROOT",
    "load_bench_module",
]

REPO_ROOT = Path(__file__).resolve().parents[3]
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"


@dataclass(frozen=True)
class MetricGate:
    """One trend-gated metric of a benchmark payload.

    ``path`` addresses a scalar inside the payload (see
    :func:`repro.reports.trend.extract_metric` for the path language, e.g.
    ``rows[mode=sparse_batched].samples_per_sec`` or
    ``qps_sweep[load_fraction=2].latency_ms.p99``).

    ``direction`` declares which way regressions point: ``"higher"`` means
    larger is better (throughput, precision), ``"lower"`` means smaller is
    better (latency, shed rate, precision gaps).

    A fresh value regresses when it falls outside
    ``committed * (1 ± rel_tol) ± abs_tol`` on the bad side.  Improvements
    never fail the gate.
    """

    path: str
    direction: str  # "higher" | "lower"
    rel_tol: float
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"gate {self.path}: bad direction {self.direction!r}")
        if self.rel_tol < 0.0 or self.abs_tol < 0.0:
            raise ValueError(f"gate {self.path}: tolerances must be >= 0")

    def bound(self, committed: float) -> float:
        """The worst fresh value that still passes, given the baseline."""
        if self.direction == "higher":
            return committed * (1.0 - self.rel_tol) - self.abs_tol
        return committed * (1.0 + self.rel_tol) + self.abs_tol

    def passes(self, committed: float, fresh: float) -> bool:
        if self.direction == "higher":
            return fresh >= self.bound(committed)
        return fresh <= self.bound(committed)


@dataclass(frozen=True)
class BenchSpec:
    """Registry entry mapping one paper artifact to its generator."""

    bench_id: str
    title: str
    paper_anchor: str  # e.g. "Fig 10", "Table 4", "Ablation", "beyond-paper"
    module: str  # bench module name under benchmarks/, e.g. "bench_fig11_hard_threshold"
    artifact: str  # artifact file name at the repo root, e.g. "BENCH_fig11.json"
    schema: dict[str, Any]  # JSON schema for the *payload* (envelope is shared)
    smoke_params: dict[str, Any] = field(default_factory=dict)
    full_params: dict[str, Any] = field(default_factory=dict)
    measured: bool = True  # False: derived from a calibrated model, never trend-gated
    gates: tuple[MetricGate, ...] = ()
    checker: str | None = None  # optional `check(payload, smoke) -> list[str]` in the module
    timeout_s: float = 120.0  # per-generator smoke budget (tests enforce it)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.bench_id:
            raise ValueError("bench_id must be non-empty")
        if not self.module.startswith("bench_"):
            raise ValueError(f"{self.bench_id}: module must be a bench_* name")
        if not (self.artifact.startswith("BENCH_") and self.artifact.endswith(".json")):
            raise ValueError(f"{self.bench_id}: artifact must match BENCH_*.json")
        if self.gates and not self.measured:
            raise ValueError(
                f"{self.bench_id}: modelled benchmarks must not declare trend "
                "gates — modelled metrics are excluded from regression gating"
            )

    def params_for(self, smoke: bool) -> dict[str, Any]:
        return dict(self.smoke_params if smoke else self.full_params)

    def artifact_path(self, root: Path | None = None) -> Path:
        return (root or REPO_ROOT) / self.artifact

    def load_module(self) -> ModuleType:
        return load_bench_module(self.module)

    def generator(self) -> Callable[[dict[str, Any]], dict[str, Any]]:
        module = self.load_module()
        run = getattr(module, "run", None)
        if not callable(run):
            raise AttributeError(
                f"{self.bench_id}: benchmarks/{self.module}.py has no run(params) generator"
            )
        return run

    def check_fn(self) -> Callable[[dict[str, Any], bool], list[str]] | None:
        if self.checker is None:
            return None
        fn = getattr(self.load_module(), self.checker, None)
        if not callable(fn):
            raise AttributeError(
                f"{self.bench_id}: benchmarks/{self.module}.py has no {self.checker}() checker"
            )
        return fn


def load_bench_module(module: str) -> ModuleType:
    """Import ``benchmarks/<module>.py`` by path (benchmarks is not a package)."""
    qualname = f"repro_bench.{module}"
    cached = sys.modules.get(qualname)
    if cached is not None:
        return cached
    path = BENCHMARKS_DIR / f"{module}.py"
    if not path.is_file():
        raise FileNotFoundError(f"bench module not found: {path}")
    spec = importlib.util.spec_from_file_location(qualname, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib contract
        raise ImportError(f"cannot load bench module {path}")
    loaded = importlib.util.module_from_spec(spec)
    sys.modules[qualname] = loaded
    try:
        spec.loader.exec_module(loaded)
    except BaseException:
        sys.modules.pop(qualname, None)
        raise
    return loaded
