"""repro.reports — the registry-driven benchmark/report factory.

A declarative registry (:mod:`repro.reports.registry`) maps every figure,
table and ablation the repo reproduces to a :class:`~repro.reports.spec.BenchSpec`:
the generator in ``benchmarks/bench_*.py``, the ``BENCH_*.json`` artifact,
a JSON schema for its payload, smoke vs full parameters, a measured/modelled
flag, and per-metric regression tolerances.

Drive it with::

    python -m repro.reports --list
    python -m repro.reports --run train_throughput --smoke
    python -m repro.reports --all --smoke --check   # regenerate + trend-gate

Artifacts carry a common envelope (bench id, schema version, measured flag,
run mode, host, git revision) and are schema-validated at write time
(:mod:`repro.reports.artifacts`).  :mod:`repro.reports.trend` diffs fresh
smoke artifacts against the committed baselines and fails, naming the
metric, when a gated metric (samples/sec, p99, precision@1, recovery
latency, shed rate, ...) regresses beyond its declared tolerance.
"""

from repro.reports.artifacts import (
    ENVELOPE_SCHEMA,
    SCHEMA_VERSION,
    ArtifactError,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.reports.registry import REGISTRY, all_specs, bench_ids, get_spec
from repro.reports.schema import SchemaError, validate
from repro.reports.spec import BenchSpec, MetricGate
from repro.reports.trend import TrendReport, check_trend, compare_documents, extract_metric

__all__ = [
    "REGISTRY",
    "BenchSpec",
    "MetricGate",
    "get_spec",
    "all_specs",
    "bench_ids",
    "SCHEMA_VERSION",
    "ENVELOPE_SCHEMA",
    "SchemaError",
    "ArtifactError",
    "validate",
    "read_artifact",
    "write_artifact",
    "validate_artifact",
    "TrendReport",
    "check_trend",
    "compare_documents",
    "extract_metric",
]
