"""Trend tracking: gate freshly generated artifacts against committed ones.

``check_trend`` diffs a fresh artifact against the committed baseline for
every :class:`~repro.reports.spec.MetricGate` the spec declares and reports,
per metric, the committed value, the fresh value, the tolerated bound and
the verdict.  A gated metric that regresses beyond its declared tolerance
fails the check with the offending metric named.

Modelled benchmarks (``spec.measured is False``) are *never* gated — their
payloads restate calibrated paper factors, so "regressions" there would only
measure the model's constants.  They are reported as skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.reports.artifacts import ArtifactError, read_artifact
from repro.reports.spec import BenchSpec, MetricGate

__all__ = [
    "MetricPathError",
    "extract_metric",
    "GateResult",
    "TrendReport",
    "compare_documents",
    "check_trend",
]


class MetricPathError(KeyError):
    """A gate path does not resolve to a scalar inside the payload."""


def _select_row(items: list[Any], selector: str, path: str) -> Any:
    if "=" in selector:
        key, _, wanted = selector.partition("=")
        for item in items:
            if not isinstance(item, dict) or key not in item:
                continue
            have = item[key]
            try:
                if float(have) == float(wanted):
                    return item
            except (TypeError, ValueError):
                pass
            if str(have) == wanted:
                return item
        raise MetricPathError(f"{path}: no row with {key}={wanted}")
    try:
        return items[int(selector)]
    except (ValueError, IndexError) as exc:
        raise MetricPathError(f"{path}: bad index [{selector}]: {exc}") from None


def extract_metric(payload: Any, path: str) -> float:
    """Resolve a dotted/selector path to a numeric scalar.

    Path language: ``a.b.c`` walks dict keys; ``rows[3]`` indexes a list;
    ``rows[mode=sparse_batched]`` selects the first row whose ``mode`` field
    equals the value (numeric comparison when both sides parse as numbers).

    >>> extract_metric({"rows": [{"mode": "a", "x": 1.5}]}, "rows[mode=a].x")
    1.5
    """
    node = payload
    for step in path.split("."):
        key, bracket, rest = step.partition("[")
        if key:
            if not isinstance(node, dict) or key not in node:
                raise MetricPathError(f"{path}: no key {key!r} at this level")
            node = node[key]
        if bracket:
            if not rest.endswith("]"):
                raise MetricPathError(f"{path}: malformed selector in {step!r}")
            if not isinstance(node, list):
                raise MetricPathError(f"{path}: {key!r} is not a list")
            node = _select_row(node, rest[:-1], path)
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise MetricPathError(f"{path}: resolves to {type(node).__name__}, not a number")
    return float(node)


@dataclass(frozen=True)
class GateResult:
    bench_id: str
    metric: str
    direction: str
    committed: float | None
    fresh: float | None
    bound: float | None
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        arrow = ">=" if self.direction == "higher" else "<="
        if self.committed is None or self.fresh is None or self.bound is None:
            return f"[{status}] {self.bench_id}:{self.metric} — {self.detail}"
        line = (
            f"[{status}] {self.bench_id}:{self.metric} "
            f"committed={self.committed:g} fresh={self.fresh:g} "
            f"(must be {arrow} {self.bound:g})"
        )
        return line + (f" — {self.detail}" if self.detail else "")


@dataclass
class TrendReport:
    results: list[GateResult] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # "<bench_id>: reason"
    errors: list[str] = field(default_factory=list)  # artifact-level failures

    @property
    def failures(self) -> list[GateResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    def describe(self) -> str:
        lines = [result.describe() for result in self.results]
        lines.extend(f"[skipped] {entry}" for entry in self.skipped)
        lines.extend(f"[error] {entry}" for entry in self.errors)
        gated = len(self.results)
        lines.append(
            f"trend check: {gated} gated metric(s), {len(self.failures)} regression(s), "
            f"{len(self.errors)} error(s)"
        )
        return "\n".join(lines)


def _gate_result(
    spec: BenchSpec, gate: MetricGate, committed: dict[str, Any], fresh: dict[str, Any]
) -> GateResult:
    try:
        committed_value = extract_metric(committed["payload"], gate.path)
    except MetricPathError as exc:
        return GateResult(
            spec.bench_id, gate.path, gate.direction, None, None, None, False,
            f"committed artifact: {exc.args[0]}",
        )
    try:
        fresh_value = extract_metric(fresh["payload"], gate.path)
    except MetricPathError as exc:
        return GateResult(
            spec.bench_id, gate.path, gate.direction, committed_value, None, None, False,
            f"fresh artifact: {exc.args[0]}",
        )
    bound = gate.bound(committed_value)
    ok = gate.passes(committed_value, fresh_value)
    detail = "" if ok else (
        f"tolerance rel={gate.rel_tol:g} abs={gate.abs_tol:g} exceeded"
    )
    return GateResult(
        spec.bench_id, gate.path, gate.direction, committed_value, fresh_value, bound, ok, detail
    )


def compare_documents(
    spec: BenchSpec, committed: dict[str, Any], fresh: dict[str, Any]
) -> TrendReport:
    """Gate one fresh artifact document against its committed counterpart."""
    report = TrendReport()
    if not spec.measured:
        report.skipped.append(f"{spec.bench_id}: modelled artifact, not trend-gated")
        return report
    if not spec.gates:
        report.skipped.append(f"{spec.bench_id}: no gated metrics declared")
        return report
    committed_mode = committed.get("envelope", {}).get("mode")
    fresh_mode = fresh.get("envelope", {}).get("mode")
    if committed_mode != fresh_mode:
        report.errors.append(
            f"{spec.bench_id}: mode mismatch — committed={committed_mode!r} vs "
            f"fresh={fresh_mode!r}; gated comparisons require like-for-like runs"
        )
        return report
    for gate in spec.gates:
        report.results.append(_gate_result(spec, gate, committed, fresh))
    return report


def check_trend(
    specs: list[BenchSpec],
    fresh_dir: Path,
    committed_dir: Path | None = None,
) -> TrendReport:
    """Gate every spec's fresh artifact in ``fresh_dir`` against the baseline.

    A missing or schema-invalid artifact on either side is an error, not a
    silent skip: the check exists to make absent coverage loud.
    """
    merged = TrendReport()
    for spec in specs:
        try:
            committed = read_artifact(spec, spec.artifact_path(committed_dir))
        except ArtifactError as exc:
            merged.errors.append(f"baseline: {exc}")
            continue
        try:
            fresh = read_artifact(spec, spec.artifact_path(fresh_dir))
        except ArtifactError as exc:
            merged.errors.append(f"fresh: {exc}")
            continue
        partial = compare_documents(spec, committed, fresh)
        merged.results.extend(partial.results)
        merged.skipped.extend(partial.skipped)
        merged.errors.extend(partial.errors)
    return merged
