"""Minimal JSON-schema validation for benchmark artifacts.

The repo is stdlib+numpy only, so this implements the small, explicit subset
of JSON Schema the registry's payload schemas actually use:

``type`` (including lists of types), ``properties`` / ``required`` /
``additionalProperties`` (bool or schema), ``patternProperties``, ``items``,
``minItems``, ``enum``, ``const``, ``minimum`` / ``maximum`` /
``exclusiveMinimum``.

Unknown schema keywords are an *error at validation time* — a typo'd
constraint must not silently validate nothing.
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = ["SchemaError", "validate", "check"]

_KNOWN_KEYWORDS = {
    "type",
    "properties",
    "required",
    "additionalProperties",
    "patternProperties",
    "items",
    "minItems",
    "enum",
    "const",
    "minimum",
    "maximum",
    "exclusiveMinimum",
    "description",
}

_TYPES: dict[str, tuple[type, ...]] = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "null": (type(None),),
}


class SchemaError(ValueError):
    """A document failed schema validation; ``problems`` lists every failure."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__(
            f"{len(problems)} schema problem(s):\n" + "\n".join(f"  - {p}" for p in problems)
        )


def _type_ok(value: Any, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; schemas mean arithmetic numbers
    if name == "number" and isinstance(value, float) and not math.isfinite(value):
        return False  # NaN/Inf are not representable in strict JSON
    return isinstance(value, expected)


def check(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """All validation problems for ``instance`` against ``schema`` (empty = valid)."""
    problems: list[str] = []
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        problems.append(f"{path}: schema uses unsupported keyword(s) {sorted(unknown)}")
        return problems

    if "type" in schema:
        names = schema["type"] if isinstance(schema["type"], list) else [schema["type"]]
        for name in names:
            if name not in _TYPES:
                problems.append(f"{path}: schema names unknown type {name!r}")
                return problems
        if not any(_type_ok(instance, name) for name in names):
            problems.append(
                f"{path}: expected {' | '.join(names)}, got {type(instance).__name__}"
                + (f" ({instance!r})" if isinstance(instance, float) else "")
            )
            return problems

    if "enum" in schema and instance not in schema["enum"]:
        problems.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if "const" in schema and instance != schema["const"]:
        problems.append(f"{path}: {instance!r} != const {schema['const']!r}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            problems.append(f"{path}: {instance!r} < minimum {schema['minimum']!r}")
        if "maximum" in schema and instance > schema["maximum"]:
            problems.append(f"{path}: {instance!r} > maximum {schema['maximum']!r}")
        if "exclusiveMinimum" in schema and instance <= schema["exclusiveMinimum"]:
            problems.append(
                f"{path}: {instance!r} <= exclusiveMinimum {schema['exclusiveMinimum']!r}"
            )

    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                problems.append(f"{path}: missing required key {key!r}")
        pattern_props = {
            re.compile(pattern): sub for pattern, sub in schema.get("patternProperties", {}).items()
        }
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            key_path = f"{path}.{key}"
            if key in properties:
                problems.extend(check(value, properties[key], key_path))
                continue
            matched = False
            for pattern, sub in pattern_props.items():
                if pattern.search(str(key)):
                    matched = True
                    problems.extend(check(value, sub, key_path))
            if matched:
                continue
            if additional is False:
                problems.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                problems.extend(check(value, additional, key_path))

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            problems.append(f"{path}: {len(instance)} item(s) < minItems {schema['minItems']}")
        if "items" in schema:
            for index, item in enumerate(instance):
                problems.extend(check(item, schema["items"], f"{path}[{index}]"))

    return problems


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> None:
    """Raise :class:`SchemaError` listing every problem (no-op when valid)."""
    problems = check(instance, schema, path)
    if problems:
        raise SchemaError(problems)
