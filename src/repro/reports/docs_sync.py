"""Generated "measured vs modelled" status table for docs/paper_map.md.

The table between the BEGIN/END markers in ``docs/paper_map.md`` is owned by
the registry: ``python -m repro.reports --sync-docs`` rewrites it and
``tools/check_docs.py`` (and tier-1 via the docs test) fails when it drifts,
so every registered bench id is guaranteed to appear in the paper map with
its machine-readable measured/modelled status.
"""

from __future__ import annotations

from pathlib import Path

from repro.reports.registry import all_specs
from repro.reports.spec import REPO_ROOT

__all__ = [
    "BEGIN_MARKER",
    "END_MARKER",
    "render_status_table",
    "sync_paper_map",
    "check_paper_map",
]

BEGIN_MARKER = "<!-- BEGIN GENERATED: repro.reports status (python -m repro.reports --sync-docs) -->"
END_MARKER = "<!-- END GENERATED: repro.reports status -->"

PAPER_MAP = REPO_ROOT / "docs" / "paper_map.md"


def render_status_table() -> str:
    """The registry rendered as a Markdown table (one row per bench id)."""
    lines = [
        "| Bench id | Paper anchor | Status | Gated metrics | Artifact |",
        "| --- | --- | --- | --- | --- |",
    ]
    for spec in all_specs():
        status = "**measured**" if spec.measured else "modelled"
        gated = "; ".join(f"`{gate.path}`" for gate in spec.gates) or "—"
        lines.append(
            f"| `{spec.bench_id}` | {spec.paper_anchor} | {status} | {gated} "
            f"| [{spec.artifact}](../{spec.artifact}) |"
        )
    return "\n".join(lines)


def _splice(text: str, table: str) -> str:
    begin = text.index(BEGIN_MARKER)
    end = text.index(END_MARKER)
    if end < begin:
        raise ValueError("paper_map.md status markers are out of order")
    return text[: begin + len(BEGIN_MARKER)] + "\n" + table + "\n" + text[end:]


def sync_paper_map(path: Path | None = None) -> bool:
    """Rewrite the generated block; returns True when the file changed."""
    target = path or PAPER_MAP
    text = target.read_text()
    if BEGIN_MARKER not in text or END_MARKER not in text:
        raise ValueError(
            f"{target} is missing the generated-status markers; re-add "
            f"{BEGIN_MARKER!r} and {END_MARKER!r}"
        )
    updated = _splice(text, render_status_table())
    if updated == text:
        return False
    target.write_text(updated)
    return True


def check_paper_map(path: Path | None = None) -> list[str]:
    """Problems with the paper map's registry coverage (empty = in sync)."""
    target = path or PAPER_MAP
    problems: list[str] = []
    try:
        text = target.read_text()
    except FileNotFoundError:
        return [f"{target} does not exist"]
    if BEGIN_MARKER not in text or END_MARKER not in text:
        return [f"{target}: generated-status markers missing"]
    if _splice(text, render_status_table()) != text:
        problems.append(
            f"{target}: registry status table is stale — run "
            "`python -m repro.reports --sync-docs`"
        )
    for spec in all_specs():
        if f"`{spec.bench_id}`" not in text:
            problems.append(f"{target}: bench id {spec.bench_id!r} not mentioned")
    return problems
