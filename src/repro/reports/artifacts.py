"""Artifact envelope: stamping, JSON coercion, schema-checked read/write.

Every ``BENCH_*.json`` written through the registry has the same two-part
shape::

    {
      "envelope": {
        "bench_id": "...", "schema_version": 1, "measured": true,
        "mode": "smoke" | "full", "paper_anchor": "...",
        "git_rev": "...", "host": {...}, "generated_at": "..."
      },
      "payload": { ...bench-specific, validated against the spec's schema... }
    }

The envelope is machine-readable provenance: ``measured`` distinguishes real
host measurements from calibrated-model output (so gating and docs can treat
them differently), ``mode`` distinguishes CI smoke baselines from full-scale
runs (the trend checker refuses to compare across modes).
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any

from repro.reports.schema import SchemaError, check, validate
from repro.reports.spec import REPO_ROOT, BenchSpec

__all__ = [
    "SCHEMA_VERSION",
    "ENVELOPE_SCHEMA",
    "ArtifactError",
    "to_jsonable",
    "stamp_envelope",
    "wrap_payload",
    "write_artifact",
    "read_artifact",
    "validate_artifact",
]

SCHEMA_VERSION = 1

ENVELOPE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "bench_id",
        "schema_version",
        "measured",
        "mode",
        "paper_anchor",
        "git_rev",
        "host",
        "generated_at",
    ],
    "additionalProperties": False,
    "properties": {
        "bench_id": {"type": "string"},
        "schema_version": {"type": "integer", "minimum": 1},
        "measured": {"type": "boolean"},
        "mode": {"enum": ["smoke", "full"]},
        "paper_anchor": {"type": "string"},
        "git_rev": {"type": "string"},
        "host": {
            "type": "object",
            "required": ["platform", "python", "cpu_count"],
            "properties": {
                "platform": {"type": "string"},
                "python": {"type": "string"},
                "cpu_count": {"type": "integer", "minimum": 1},
            },
        },
        "generated_at": {"type": "string"},
    },
}


class ArtifactError(ValueError):
    """An artifact is structurally broken (bad JSON, bad envelope, bad payload)."""


def to_jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and tuples into plain JSON-safe Python.

    Generators return whatever is natural (numpy floats, ``(x, y)`` series
    tuples); artifacts must be plain JSON.  Non-finite floats are stringified
    (``"NaN"`` / ``"Infinity"``) rather than emitted as bare tokens JSON
    parsers reject.
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value != value:
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    return value


def git_revision(root: Path | None = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root or REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown"


def stamp_envelope(spec: BenchSpec, mode: str) -> dict[str, Any]:
    if mode not in ("smoke", "full"):
        raise ValueError(f"mode must be smoke|full, got {mode!r}")
    return {
        "bench_id": spec.bench_id,
        "schema_version": SCHEMA_VERSION,
        "measured": spec.measured,
        "mode": mode,
        "paper_anchor": spec.paper_anchor,
        "git_rev": git_revision(),
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count() or 1,
        },
        "generated_at": _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
    }


def wrap_payload(spec: BenchSpec, payload: dict[str, Any], mode: str) -> dict[str, Any]:
    """Envelope + JSON-coerced payload, validated; raises on schema mismatch."""
    document = {"envelope": stamp_envelope(spec, mode), "payload": to_jsonable(payload)}
    validate_artifact(spec, document, strict=True)
    return document


def validate_artifact(
    spec: BenchSpec, document: Any, *, strict: bool = False
) -> list[str]:
    """Every envelope/payload schema problem for ``document`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        problems.append(f"$: artifact must be an object, got {type(document).__name__}")
    else:
        for key in ("envelope", "payload"):
            if key not in document:
                problems.append(f"$: missing top-level {key!r}")
        envelope = document.get("envelope")
        if isinstance(envelope, dict):
            problems.extend(check(envelope, ENVELOPE_SCHEMA, "$.envelope"))
            if envelope.get("bench_id") not in (None, spec.bench_id):
                problems.append(
                    f"$.envelope.bench_id: {envelope.get('bench_id')!r} is not "
                    f"{spec.bench_id!r}"
                )
            if (
                "measured" in envelope
                and isinstance(envelope["measured"], bool)
                and envelope["measured"] != spec.measured
            ):
                problems.append(
                    f"$.envelope.measured: {envelope['measured']!r} contradicts the "
                    f"registry ({spec.measured!r})"
                )
        elif "envelope" in document:
            problems.append("$.envelope: must be an object")
        if "payload" in document:
            problems.extend(check(document["payload"], spec.schema, "$.payload"))
    if strict and problems:
        raise SchemaError(problems)
    return problems


def write_artifact(
    spec: BenchSpec, payload: dict[str, Any], mode: str, path: Path | None = None
) -> Path:
    """Stamp, validate and write one artifact; returns the path written."""
    document = wrap_payload(spec, payload, mode)
    target = path if path is not None else spec.artifact_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2) + "\n")
    return target


def read_artifact(spec: BenchSpec, path: Path | None = None) -> dict[str, Any]:
    """Load + validate one committed artifact; raises :class:`ArtifactError`."""
    target = path if path is not None else spec.artifact_path()
    try:
        document = json.loads(target.read_text())
    except FileNotFoundError:
        raise ArtifactError(f"{spec.bench_id}: artifact missing at {target}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{spec.bench_id}: {target} is not valid JSON: {exc}") from None
    problems = validate_artifact(spec, document)
    if problems:
        raise ArtifactError(
            f"{spec.bench_id}: {target} fails its schema:\n"
            + "\n".join(f"  - {p}" for p in problems)
        )
    return document
