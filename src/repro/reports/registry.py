"""The benchmark registry: every figure/table/ablation the repo reproduces.

One :class:`~repro.reports.spec.BenchSpec` per ``benchmarks/bench_*.py``
script.  The registry is what makes the repo's perf claims mechanically
checkable: ``python -m repro.reports --all --smoke --check`` regenerates
every artifact from the declared smoke parameters, validates each payload
against its schema, runs the bench's own invariant checker, and gates every
declared metric against the committed baseline.

Conventions
-----------
* ``smoke_params`` are CI-scale: the committed ``BENCH_*.json`` baselines
  are generated in smoke mode so trend comparisons are like-for-like.
* ``measured=False`` marks benchmarks whose headline numbers restate the
  paper's calibrated factors (e.g. the 1.3x hugepages/SIMD speedup) instead
  of measuring this host; they are stamped as modelled in the envelope and
  excluded from trend gating.
* Deterministic metrics (precision with a fixed seed) get tight tolerances;
  wall-clock metrics get loose ones — CI containers are noisy neighbours.
"""

from __future__ import annotations

from repro.reports.schemas import PAYLOAD_SCHEMAS
from repro.reports.spec import BenchSpec, MetricGate

__all__ = ["REGISTRY", "get_spec", "all_specs", "bench_ids"]


def _spec(bench_id: str, **kwargs) -> BenchSpec:
    return BenchSpec(bench_id=bench_id, schema=PAYLOAD_SCHEMAS[bench_id], **kwargs)


_SPECS = (
    _spec(
        "fig4_sampling",
        title="Sampling-strategy retrieval overhead vs neuron count",
        paper_anchor="Fig 4 (and Fig 12)",
        module="bench_fig4_sampling_strategies",
        artifact="BENCH_fig4_sampling.json",
        smoke_params={"neuron_counts": [1000, 2000], "queries": 5},
        full_params={"neuron_counts": [2000, 3000, 4000, 5000, 6000, 7000], "queries": 20},
        measured=True,
        checker="check",
        notes="Wall-clock micro-timing; ordering (TopK most expensive) is the claim.",
    ),
    _spec(
        "fig5_time_accuracy",
        title="SLIDE vs TF-GPU vs TF-CPU time/iteration to accuracy",
        paper_anchor="Fig 5",
        module="bench_fig5_time_vs_accuracy",
        artifact="BENCH_fig5_time_accuracy.json",
        smoke_params={"scale_delicious": 1 / 2048, "scale_amazon": 1 / 4096, "epochs": 1},
        full_params={"scale_delicious": 1 / 1024, "scale_amazon": 1 / 2048, "epochs": 2},
        measured=False,
        checker="check",
        notes="Accuracies are real scaled-down training; wall-clock comes from "
        "calibrated device profiles projected to the paper's 44-core/V100 setup.",
    ),
    _spec(
        "fig6_inefficiencies",
        title="Top-down CPU pipeline-slot inefficiency breakdown",
        paper_anchor="Fig 6",
        module="bench_fig6_inefficiencies",
        artifact="BENCH_fig6_inefficiencies.json",
        smoke_params={"threads": [8, 16, 32]},
        full_params={"threads": [8, 16, 32]},
        measured=False,
        checker="check",
        notes="Mechanistic pipeline-slot model; no hardware counters are read.",
    ),
    _spec(
        "fig7_sampled_softmax",
        title="SLIDE vs static sampled softmax",
        paper_anchor="Fig 7",
        module="bench_fig7_sampled_softmax",
        artifact="BENCH_fig7_sampled_softmax.json",
        smoke_params={"scale_delicious": 1 / 2048, "scale_amazon": 1 / 4096, "epochs": 1},
        full_params={"scale_delicious": 1 / 1024, "scale_amazon": 1 / 2048, "epochs": 2},
        measured=True,
        gates=(
            MetricGate("delicious.final_accuracy.slide", "higher", rel_tol=0.25, abs_tol=0.05),
            MetricGate("delicious.accuracy_advantage", "higher", rel_tol=0.5, abs_tol=0.05),
        ),
        checker="check",
        notes="Final accuracies and active fractions are measured (deterministic "
        "seeded training); the time axis is device-model attributed.",
    ),
    _spec(
        "fig8_batch_size",
        title="Batch-size effect on convergence time",
        paper_anchor="Fig 8",
        module="bench_fig8_batch_size",
        artifact="BENCH_fig8_batch_size.json",
        smoke_params={"scale": 1 / 4096, "epochs": 1, "batch_sizes": [16, 32]},
        full_params={"scale": 1 / 2048, "epochs": 2, "batch_sizes": [16, 32, 64]},
        measured=False,
        checker="check",
        notes="Convergence times are device-model projections at each batch size.",
    ),
    _spec(
        "fig9_scalability",
        title="Core scalability: measured process-HOGWILD speedup + 44-core projection",
        paper_anchor="Fig 9 (and Fig 13)",
        module="bench_fig9_scalability",
        artifact="BENCH_fig9_scalability.json",
        smoke_params={
            "process_counts": [1, 2],
            "scale": 1 / 2048,
            "epochs": 2,
            "include_projection": False,
        },
        full_params={
            "process_counts": [1, 2, 4],
            "scale": 1 / 256,
            "epochs": 5,
            "include_projection": True,
        },
        measured=True,
        gates=(
            MetricGate(
                "measured.rows[processes=1].samples_per_sec", "higher", rel_tol=0.6
            ),
            MetricGate(
                "precision_gap_vs_baseline.2", "lower", rel_tol=1.0, abs_tol=0.04
            ),
        ),
        checker="check",
        timeout_s=180.0,
        notes="Measured speedup is bounded by available cores (1 on this container); "
        "the projection section is the calibrated device model.",
    ),
    _spec(
        "fig10_hugepages_simd",
        title="Hugepages + SIMD cache-optimisation effect",
        paper_anchor="Fig 10",
        module="bench_fig10_hugepages_simd",
        artifact="BENCH_fig10_hugepages_simd.json",
        smoke_params={"scale": 1 / 4096, "epochs": 1},
        full_params={"scale": 1 / 2048, "epochs": 2},
        measured=False,
        checker="check",
        notes="MODELLED: assumes the paper's 1.3x cache-optimisation factor "
        "(repro.perf.memory.HUGEPAGES_SPEEDUP); no hugepages/SIMD measurement "
        "happens, so these metrics are excluded from trend gating.",
    ),
    _spec(
        "fig11_hard_threshold",
        title="Hard-thresholding selection/collision trade-off",
        paper_anchor="Fig 11",
        module="bench_fig11_hard_threshold",
        artifact="BENCH_fig11_hard_threshold.json",
        smoke_params={"k": 1, "l": 10, "thresholds": [1, 3, 5, 7, 9], "num_points": 17},
        full_params={"k": 1, "l": 10, "thresholds": [1, 3, 5, 7, 9], "num_points": 33},
        measured=False,
        checker="check",
        notes="Closed-form plot of Equation (3): exact, host-independent.",
    ),
    _spec(
        "table1_datasets",
        title="Dataset statistics: paper datasets vs synthetic stand-ins",
        paper_anchor="Table 1",
        module="bench_table1_datasets",
        artifact="BENCH_table1_datasets.json",
        smoke_params={"scale": 1 / 1024},
        full_params={"scale": 1 / 1024},
        measured=True,
        checker="check",
        notes="Paper rows restate Table 1; synthetic rows are measured from the "
        "generated stand-ins.  Smoke keeps the full 1/1024 scale (cheap, and "
        "the sparsity invariant needs a non-degenerate feature dimension).",
    ),
    _spec(
        "table2_core_utilization",
        title="Core utilisation: measured process-HOGWILD + calibrated model",
        paper_anchor="Table 2",
        module="bench_table2_core_utilization",
        artifact="BENCH_table2_core_utilization.json",
        smoke_params={"process_counts": [1, 2], "scale": 1 / 2048, "epochs": 1},
        full_params={"process_counts": [1, 2, 4], "scale": 1 / 512, "epochs": 2},
        measured=True,
        gates=(
            MetricGate(
                "measured.rows[processes=1].SLIDE_utilization_measured",
                "higher",
                rel_tol=0.4,
                abs_tol=0.05,
            ),
        ),
        checker="check",
        timeout_s=180.0,
    ),
    _spec(
        "table3_insertion",
        title="Hash-table insertion schemes: per-item vs batched vs code-diff update",
        paper_anchor="Table 3",
        module="bench_table3_insertion",
        artifact="BENCH_table3_insertion.json",
        smoke_params={"num_neurons": 2000, "min_speedup": 1.0},
        full_params={"num_neurons": 50_000, "min_speedup": 5.0},
        measured=True,
        gates=(
            MetricGate("min_batched_speedup_vs_per_item", "higher", rel_tol=0.7),
            MetricGate("rows[policy=FIFO].batched_items_per_s", "higher", rel_tol=0.7),
        ),
        checker="check",
    ),
    _spec(
        "table4_hugepages_counters",
        title="TLB/page-walk/page-fault counters with and without hugepages",
        paper_anchor="Table 4",
        module="bench_table4_hugepages_counters",
        artifact="BENCH_table4_hugepages_counters.json",
        smoke_params={},
        full_params={},
        measured=False,
        checker="check",
        notes="MODELLED: derived from the analytical memory-footprint model "
        "anchored on the paper's Table 4; no perf counters are read, so these "
        "metrics are excluded from trend gating.",
    ),
    _spec(
        "ablation_hash_families",
        title="Ablation: hash family choice (SimHash/DWTA/WTA/DOPH/MinHash)",
        paper_anchor="Ablation (paper §5.3 / DESIGN §5)",
        module="bench_ablation_hash_families",
        artifact="BENCH_ablation_hash_families.json",
        smoke_params={"scale": 1 / 2048, "epochs": 1},
        full_params={"scale": 1 / 1024, "epochs": 2},
        measured=True,
        gates=(
            MetricGate("rows[hash_family=simhash].final_accuracy", "higher", 0.5, 0.1),
        ),
        checker="check",
        timeout_s=180.0,
    ),
    _spec(
        "ablation_rebuild_schedule",
        title="Ablation: exponential-decay vs fixed-period rebuild schedule",
        paper_anchor="Ablation (paper §4.2)",
        module="bench_ablation_rebuild_schedule",
        artifact="BENCH_ablation_rebuild_schedule.json",
        smoke_params={"scale": 1 / 2048, "epochs": 1},
        full_params={"scale": 1 / 1024, "epochs": 2},
        measured=True,
        gates=(
            MetricGate(
                "rows[schedule=exponential_decay].final_accuracy", "higher", 0.5, 0.1
            ),
        ),
        checker="check",
    ),
    _spec(
        "ablation_sampling_strategies",
        title="Ablation: sampling strategy accuracy (vanilla/topk/hard-threshold)",
        paper_anchor="Ablation (paper Appendix C)",
        module="bench_ablation_sampling_strategies",
        artifact="BENCH_ablation_sampling_strategies.json",
        smoke_params={"scale": 1 / 2048, "epochs": 1},
        full_params={"scale": 1 / 1024, "epochs": 2},
        measured=True,
        gates=(
            MetricGate("rows[strategy=vanilla].final_accuracy", "higher", 0.5, 0.1),
        ),
        checker="check",
        timeout_s=180.0,
    ),
    _spec(
        "train_throughput",
        title="Training throughput: dense vs per-sample vs batched sparse",
        paper_anchor="beyond-paper (perf anchor)",
        module="bench_train_throughput",
        artifact="BENCH_train_throughput.json",
        smoke_params={"scale": 1 / 2048, "epochs": 1},
        full_params={"scale": 1 / 512, "epochs": 6},
        measured=True,
        gates=(
            MetricGate("rows[mode=sparse_batched].samples_per_sec", "higher", rel_tol=0.6),
            MetricGate("speedup_batched_vs_per_sample", "higher", rel_tol=0.5),
            MetricGate(
                "rows[mode=sparse_batched].precision_at_1", "higher", rel_tol=0.1, abs_tol=0.05
            ),
        ),
        checker="check",
    ),
    _spec(
        "data_pipeline",
        title="Streaming shard pipeline vs eager re-parse",
        paper_anchor="beyond-paper (data pipeline)",
        module="bench_data_pipeline",
        artifact="BENCH_data_pipeline.json",
        smoke_params={"scale": 1 / 2048},
        full_params={"scale": 1 / 512},
        measured=True,
        gates=(
            MetricGate("speedup_sharded_vs_eager", "higher", rel_tol=0.6),
            MetricGate("rows[stage=sharded_epoch].examples_per_sec", "higher", rel_tol=0.6),
        ),
        checker="check",
    ),
    _spec(
        "serving_latency",
        title="Serving under sustained load + zero-downtime hot reload",
        paper_anchor="beyond-paper (serving runtime)",
        module="bench_serving_latency",
        artifact="BENCH_serving_latency.json",
        smoke_params={"smoke": True},
        full_params={"smoke": False},
        measured=True,
        gates=(
            MetricGate("capacity.sustained_qps", "higher", rel_tol=0.6),
            MetricGate(
                "qps_sweep[load_fraction=2].latency_ms.p99", "lower", rel_tol=0.75, abs_tol=5.0
            ),
            MetricGate(
                "qps_sweep[load_fraction=2].shed_rate", "lower", rel_tol=0.75, abs_tol=0.15
            ),
        ),
        checker="check",
        timeout_s=240.0,
    ),
    _spec(
        "fault_recovery",
        title="Chaos training: worker SIGKILL recovery + mid-run checkpoint resume",
        paper_anchor="beyond-paper (fault tolerance)",
        module="bench_fault_recovery",
        artifact="BENCH_fault_recovery.json",
        smoke_params={"smoke": True},
        full_params={"smoke": False},
        measured=True,
        gates=(
            MetricGate(
                "worker_kill.killed.mean_recovery_latency_s", "lower", rel_tol=2.0, abs_tol=0.1
            ),
            MetricGate("worker_kill.precision_gap", "lower", rel_tol=1.0, abs_tol=0.04),
            MetricGate("parent_kill_resume.recovery_wall_s", "lower", rel_tol=2.0, abs_tol=0.3),
        ),
        checker="check",
        timeout_s=240.0,
    ),
    _spec(
        "router_failover",
        title="Multi-replica router chaos: failover, degradation ladder, breakers",
        paper_anchor="beyond-paper (serving resilience)",
        module="bench_router_failover",
        artifact="BENCH_router_failover.json",
        smoke_params={"smoke": True},
        full_params={"smoke": False},
        measured=True,
        gates=(
            MetricGate("failover.availability", "higher", rel_tol=0.0, abs_tol=0.01),
            MetricGate("failover.detection_ms", "lower", rel_tol=1.5, abs_tol=150.0),
            MetricGate(
                "degradation_ladder[level=0].precision_at_1", "higher", rel_tol=0.2, abs_tol=0.1
            ),
            MetricGate("chaos.availability", "higher", rel_tol=0.0, abs_tol=0.01),
        ),
        checker="check",
        timeout_s=240.0,
    ),
)

REGISTRY: dict[str, BenchSpec] = {spec.bench_id: spec for spec in _SPECS}
if len(REGISTRY) != len(_SPECS):  # pragma: no cover - construction-time guard
    raise RuntimeError("duplicate bench_id in registry")
_ARTIFACTS = {spec.artifact for spec in _SPECS}
if len(_ARTIFACTS) != len(_SPECS):  # pragma: no cover - construction-time guard
    raise RuntimeError("duplicate artifact name in registry")


def get_spec(bench_id: str) -> BenchSpec:
    try:
        return REGISTRY[bench_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown bench id {bench_id!r}; known: {known}") from None


def all_specs() -> list[BenchSpec]:
    return list(REGISTRY.values())


def bench_ids() -> list[str]:
    return list(REGISTRY)
