"""Memory-mapped CSR shard cache: manifest, shard handles and the dataset.

A shard cache directory holds the output of one ingest run
(:mod:`repro.data.ingest`): per shard, five little-endian ``.npy`` arrays

* ``<shard>.feat_indptr.npy``  — ``int64 (n+1,)`` feature row pointers,
* ``<shard>.feat_indices.npy`` — ``int64 (nnz,)`` sorted unique per row,
* ``<shard>.feat_values.npy``  — ``float64 (nnz,)`` aligned values,
* ``<shard>.label_indptr.npy`` — ``int64 (n+1,)`` label row pointers,
* ``<shard>.label_indices.npy``— ``int64 (lnnz,)`` label ids per row,

plus one ``manifest.json`` recording dimensions, per-shard example counts and
CRC-32 checksums of every array file.  :class:`ShardedDataset` opens the
arrays with ``numpy``'s ``mmap_mode="r"`` so resident memory is bounded by
the pages actually touched, never by the dataset size; epoch iteration
streams one shard at a time and can release each shard as soon as it has
been consumed.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.types import SparseBatch, SparseExample, SparseVector

__all__ = [
    "MANIFEST_NAME",
    "FORMAT_VERSION",
    "ARRAY_NAMES",
    "ShardInfo",
    "ShardManifest",
    "Shard",
    "ShardedDataset",
    "file_crc32",
    "gather_csr_rows",
]

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1
ARRAY_NAMES = (
    "feat_indptr",
    "feat_indices",
    "feat_values",
    "label_indptr",
    "label_indices",
)


def file_crc32(path: Path, chunk_bytes: int = 1 << 20) -> int:
    """CRC-32 of a file's bytes, streamed so large shards never load whole."""
    crc = 0
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class ShardInfo:
    """Manifest entry for one shard."""

    name: str
    num_examples: int
    feature_nnz: int
    label_nnz: int
    # Array name -> CRC-32 of the corresponding ``.npy`` file.
    checksums: dict[str, int]

    def filename(self, array: str) -> str:
        if array not in ARRAY_NAMES:
            raise KeyError(f"unknown shard array {array!r}")
        return f"{self.name}.{array}.npy"

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "num_examples": self.num_examples,
            "feature_nnz": self.feature_nnz,
            "label_nnz": self.label_nnz,
            "checksums": dict(self.checksums),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ShardInfo":
        return cls(
            name=str(data["name"]),
            num_examples=int(data["num_examples"]),
            feature_nnz=int(data["feature_nnz"]),
            label_nnz=int(data["label_nnz"]),
            checksums={str(k): int(v) for k, v in dict(data["checksums"]).items()},
        )


@dataclass(frozen=True)
class ShardManifest:
    """The JSON manifest describing one ingested shard cache."""

    feature_dim: int
    label_dim: int
    num_examples: int
    shard_size: int
    shards: tuple[ShardInfo, ...]
    source: str = ""
    format_version: int = FORMAT_VERSION

    def __post_init__(self) -> None:
        if self.feature_dim <= 0 or self.label_dim <= 0:
            raise ValueError("feature_dim and label_dim must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.num_examples != sum(shard.num_examples for shard in self.shards):
            raise ValueError("num_examples does not match the shard example counts")

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_feature_nnz(self) -> int:
        return sum(shard.feature_nnz for shard in self.shards)

    @property
    def total_label_nnz(self) -> int:
        return sum(shard.label_nnz for shard in self.shards)

    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": self.format_version,
            "source": self.source,
            "feature_dim": self.feature_dim,
            "label_dim": self.label_dim,
            "num_examples": self.num_examples,
            "shard_size": self.shard_size,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ShardManifest":
        version = int(data.get("format_version", -1))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard-cache format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        return cls(
            feature_dim=int(data["feature_dim"]),
            label_dim=int(data["label_dim"]),
            num_examples=int(data["num_examples"]),
            shard_size=int(data["shard_size"]),
            shards=tuple(ShardInfo.from_dict(s) for s in data["shards"]),
            source=str(data.get("source", "")),
            format_version=version,
        )

    def save(self, cache_dir: str | Path) -> Path:
        path = Path(cache_dir) / MANIFEST_NAME
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, cache_dir: str | Path) -> "ShardManifest":
        path = Path(cache_dir) / MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(
                f"no shard-cache manifest at {path}; run the ingest first "
                "(python -m repro.data <xc_file> <cache_dir>)"
            )
        return cls.from_dict(json.loads(path.read_text()))


def gather_csr_rows(
    indptr: np.ndarray, order: np.ndarray, *arrays: np.ndarray
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Gather CSR rows ``order`` out of ``(indptr, *arrays)``.

    Returns the new row pointer plus each data array restricted to the
    gathered rows, in ``order`` order.  Fully vectorised: the source
    positions are built with one ``repeat`` + ``arange`` instead of a
    per-row Python loop.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    order = np.asarray(order, dtype=np.int64)
    counts = np.diff(indptr)[order]
    out_indptr = np.empty(order.size + 1, dtype=np.int64)
    out_indptr[0] = 0
    np.cumsum(counts, out=out_indptr[1:])
    total = int(out_indptr[-1])
    if total:
        offsets = np.arange(total, dtype=np.int64) - np.repeat(out_indptr[:-1], counts)
        src = np.repeat(indptr[:-1][order], counts) + offsets
    else:
        src = np.zeros(0, dtype=np.int64)
    return out_indptr, tuple(np.asarray(a)[src] for a in arrays)


@dataclass
class CsrBlock:
    """An in-order run of examples as plain CSR arrays (shard or carry)."""

    feat_indptr: np.ndarray
    feat_indices: np.ndarray
    feat_values: np.ndarray
    label_indptr: np.ndarray
    label_indices: np.ndarray

    @property
    def num_examples(self) -> int:
        return int(self.feat_indptr.shape[0] - 1)

    def slice(self, lo: int, hi: int) -> "CsrBlock":
        """Rows ``[lo, hi)`` as a zero-copy view block."""
        flo, fhi = int(self.feat_indptr[lo]), int(self.feat_indptr[hi])
        llo, lhi = int(self.label_indptr[lo]), int(self.label_indptr[hi])
        return CsrBlock(
            feat_indptr=self.feat_indptr[lo : hi + 1] - flo,
            feat_indices=self.feat_indices[flo:fhi],
            feat_values=self.feat_values[flo:fhi],
            label_indptr=self.label_indptr[lo : hi + 1] - llo,
            label_indices=self.label_indices[llo:lhi],
        )

    def copy(self) -> "CsrBlock":
        """A RAM-resident copy (detaches the block from any shard mmap)."""
        return CsrBlock(
            feat_indptr=np.array(self.feat_indptr),
            feat_indices=np.array(self.feat_indices),
            feat_values=np.array(self.feat_values),
            label_indptr=np.array(self.label_indptr),
            label_indices=np.array(self.label_indices),
        )

    @staticmethod
    def concat(first: "CsrBlock", second: "CsrBlock") -> "CsrBlock":
        return CsrBlock(
            feat_indptr=np.concatenate(
                [first.feat_indptr, second.feat_indptr[1:] + first.feat_indptr[-1]]
            ),
            feat_indices=np.concatenate([first.feat_indices, second.feat_indices]),
            feat_values=np.concatenate([first.feat_values, second.feat_values]),
            label_indptr=np.concatenate(
                [first.label_indptr, second.label_indptr[1:] + first.label_indptr[-1]]
            ),
            label_indices=np.concatenate([first.label_indices, second.label_indices]),
        )

    def to_batch(self, feature_dim: int, label_dim: int) -> SparseBatch:
        return SparseBatch.from_csr(
            self.feat_indptr,
            self.feat_indices,
            self.feat_values,
            self.label_indptr,
            self.label_indices,
            feature_dim=feature_dim,
            label_dim=label_dim,
        )


class Shard:
    """Lazy handle over one shard's memory-mapped arrays."""

    def __init__(self, directory: Path, info: ShardInfo) -> None:
        self.directory = Path(directory)
        self.info = info
        self._arrays: dict[str, np.ndarray] | None = None

    @property
    def num_examples(self) -> int:
        return self.info.num_examples

    @property
    def is_open(self) -> bool:
        return self._arrays is not None

    def open(self) -> dict[str, np.ndarray]:
        """Memory-map the shard's arrays (idempotent).

        Returns the local reference rather than re-reading ``self._arrays``,
        so a concurrent ``close()`` (e.g. a releasing epoch stream on the
        prefetch thread racing random access on the trainer thread) can
        never hand the caller ``None`` — the close simply drops the cached
        handle and the next ``open()`` remaps.
        """
        arrays = self._arrays
        if arrays is None:
            arrays = {}
            for name in ARRAY_NAMES:
                path = self.directory / self.info.filename(name)
                if not path.exists():
                    raise FileNotFoundError(f"shard array missing: {path}")
                arrays[name] = np.load(path, mmap_mode="r")
            n = self.info.num_examples
            if arrays["feat_indptr"].shape != (n + 1,) or arrays[
                "label_indptr"
            ].shape != (n + 1,):
                raise ValueError(
                    f"shard {self.info.name}: indptr shape does not match the "
                    f"manifest's {n} examples"
                )
            self._arrays = arrays
        return arrays

    def close(self) -> None:
        """Drop the mmap references (reopened transparently on next use)."""
        self._arrays = None

    def verify(self) -> None:
        """Recompute every array file's CRC-32 against the manifest."""
        for name in ARRAY_NAMES:
            path = self.directory / self.info.filename(name)
            if not path.exists():
                raise FileNotFoundError(f"shard array missing: {path}")
            actual = file_crc32(path)
            expected = self.info.checksums.get(name)
            if actual != expected:
                raise ValueError(
                    f"shard {self.info.name}: checksum mismatch for {name} "
                    f"(manifest {expected}, file {actual}) — the cache is "
                    "corrupt or was written by a different source; re-ingest"
                )

    def example(self, row: int, feature_dim: int) -> SparseExample:
        arrays = self.open()
        flo = int(arrays["feat_indptr"][row])
        fhi = int(arrays["feat_indptr"][row + 1])
        llo = int(arrays["label_indptr"][row])
        lhi = int(arrays["label_indptr"][row + 1])
        return SparseExample(
            features=SparseVector(
                indices=arrays["feat_indices"][flo:fhi],
                values=arrays["feat_values"][flo:fhi],
                dimension=feature_dim,
            ),
            labels=np.asarray(arrays["label_indices"][llo:lhi]),
        )

    def csr_block(self, order: np.ndarray | None = None) -> CsrBlock:
        """The shard's examples as a CSR block.

        ``order=None`` returns zero-copy views of the mmapped arrays;
        a permutation gathers the rows into RAM (bounded by the shard size).
        """
        arrays = self.open()
        if order is None:
            return CsrBlock(
                feat_indptr=arrays["feat_indptr"],
                feat_indices=arrays["feat_indices"],
                feat_values=arrays["feat_values"],
                label_indptr=arrays["label_indptr"],
                label_indices=arrays["label_indices"],
            )
        feat_indptr, (feat_indices, feat_values) = gather_csr_rows(
            arrays["feat_indptr"], order, arrays["feat_indices"], arrays["feat_values"]
        )
        label_indptr, (label_indices,) = gather_csr_rows(
            arrays["label_indptr"], order, arrays["label_indices"]
        )
        return CsrBlock(
            feat_indptr=feat_indptr,
            feat_indices=feat_indices,
            feat_values=feat_values,
            label_indptr=label_indptr,
            label_indices=label_indices,
        )


class ShardedDataset(Sequence[SparseExample]):
    """Bounded-memory view over an ingested shard cache.

    Two access disciplines:

    * **Random access** (``dataset[i]`` / ``gather``): examples are read
      through the shard mmaps on demand.  ``SlideTrainer`` uses this mode to
      reproduce the eager list's global shuffle bit-for-bit — same
      ``TrainingConfig.seed`` → same batches → same losses.
    * **Streaming** (:meth:`iter_batches`): shard-level shuffling with a
      deterministic per-epoch seed; one shard is resident at a time and each
      shard is released as soon as it has been consumed, so memory is
      bounded by ``shard_size`` regardless of the dataset size.

    ``shard_subset`` restricts the view to a subset of the cache's shards
    (given as manifest positions).  Combined with :meth:`assign_shards` /
    :meth:`worker_view` this is what lets the process-parallel HOGWILD
    trainer (:mod:`repro.parallel.sharedmem`) hand each worker process a
    disjoint slice of the dataset that it can stream independently — the
    workers share nothing but the cache directory on disk.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        seed: int = 0,
        verify_checksums: bool = False,
        shard_subset: Sequence[int] | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.manifest = ShardManifest.load(self.cache_dir)
        self.seed = int(seed)
        if shard_subset is None:
            self._shard_indices = list(range(self.manifest.num_shards))
        else:
            self._shard_indices = [int(i) for i in shard_subset]
            seen: set[int] = set()
            for index in self._shard_indices:
                if not 0 <= index < self.manifest.num_shards:
                    raise ValueError(
                        f"shard_subset index {index} out of range "
                        f"(cache has {self.manifest.num_shards} shards)"
                    )
                if index in seen:
                    raise ValueError(f"shard_subset repeats shard {index}")
                seen.add(index)
        self._shards = [
            Shard(self.cache_dir, self.manifest.shards[i]) for i in self._shard_indices
        ]
        counts = np.array([s.num_examples for s in self._shards], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        if verify_checksums:
            self.verify()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def feature_dim(self) -> int:
        return self.manifest.feature_dim

    @property
    def label_dim(self) -> int:
        return self.manifest.label_dim

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_indices(self) -> list[int]:
        """Manifest positions of the shards this view covers (in view order)."""
        return list(self._shard_indices)

    def open_shard_count(self) -> int:
        """How many shards currently hold open mmaps (memory diagnostics)."""
        return sum(1 for shard in self._shards if shard.is_open)

    def verify(self) -> None:
        """Checksum-verify every shard file against the manifest."""
        for shard in self._shards:
            shard.verify()

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    # ------------------------------------------------------------------
    # Worker sharding
    # ------------------------------------------------------------------
    def assign_shards(self, num_workers: int) -> list[list[int]]:
        """Partition this view's shards into ``num_workers`` disjoint groups.

        Deterministic greedy longest-processing-time assignment over example
        counts: shards are sorted by size (largest first, manifest position
        as tie-break) and each goes to the currently lightest worker, so the
        groups are balanced even when shard sizes are uneven.  Every shard of
        the view appears in exactly one group; groups may be empty only when
        ``num_workers`` exceeds the shard count.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        groups: list[list[int]] = [[] for _ in range(num_workers)]
        loads = [0] * num_workers
        sized = sorted(
            zip(self._shard_indices, self._shards),
            key=lambda pair: (-pair[1].num_examples, pair[0]),
        )
        for manifest_index, shard in sized:
            lightest = min(range(num_workers), key=lambda w: (loads[w], w))
            groups[lightest].append(manifest_index)
            loads[lightest] += shard.num_examples
        return [sorted(group) for group in groups]

    def worker_view(
        self, worker_id: int, num_workers: int, seed: int | None = None
    ) -> "ShardedDataset":
        """A new dataset restricted to worker ``worker_id``'s shard group.

        The view opens its own shard handles (and therefore its own mmaps),
        so it is safe to use from another process: worker processes of the
        process-parallel trainer each call this with their own id and stream
        disjoint data without coordinating.
        """
        if not 0 <= worker_id < num_workers:
            raise ValueError("worker_id must lie in [0, num_workers)")
        assignment = self.assign_shards(num_workers)[worker_id]
        return ShardedDataset(
            self.cache_dir,
            seed=self.seed if seed is None else seed,
            shard_subset=assignment,
        )

    # ------------------------------------------------------------------
    # Random access (the eager-parity path)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._offsets[-1])

    def _locate(self, index: int) -> tuple[Shard, int]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"example index {index} out of range")
        shard_idx = int(np.searchsorted(self._offsets, index, side="right")) - 1
        return self._shards[shard_idx], index - int(self._offsets[shard_idx])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        shard, row = self._locate(int(index))
        return shard.example(row, self.feature_dim)

    def gather(self, indices: Sequence[int] | np.ndarray) -> list[SparseExample]:
        """Examples at ``indices``, in the given order."""
        return [self[int(i)] for i in indices]

    def __iter__(self) -> Iterator[SparseExample]:
        for shard in self._shards:
            for row in range(shard.num_examples):
                yield shard.example(row, self.feature_dim)

    # ------------------------------------------------------------------
    # Streaming epochs
    # ------------------------------------------------------------------
    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """The deterministic generator driving epoch ``epoch``'s shuffle."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(73, epoch))
        )

    def iter_batches(
        self,
        batch_size: int,
        epoch: int = 0,
        shuffle: bool = True,
        release: bool = True,
    ) -> Iterator[SparseBatch]:
        """Stream one epoch as ready-to-train :class:`SparseBatch` objects.

        Shard order and within-shard row order are shuffled by
        :meth:`epoch_rng`, so the stream is reproducible per ``(seed,
        epoch)``.  Batches have exactly ``batch_size`` examples except the
        final one; runs that are not shard-aligned carry the tail rows over
        to the next shard.  ``release=True`` closes each shard's mmaps once
        its rows have been handed out — including the shard being streamed
        when the consumer abandons the generator mid-epoch (``close()`` on
        the generator, an early ``break``, or an exception all release it).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = self.epoch_rng(epoch)
        shard_order = (
            rng.permutation(self.num_shards)
            if shuffle
            else np.arange(self.num_shards)
        )
        carry: CsrBlock | None = None
        current: Shard | None = None
        try:
            for shard_idx in shard_order:
                shard = self._shards[int(shard_idx)]
                current = shard if release else None
                order = rng.permutation(shard.num_examples) if shuffle else None
                block = shard.csr_block(order)
                if carry is not None:
                    block = CsrBlock.concat(carry, block)
                    carry = None
                n = block.num_examples
                usable = n - (n % batch_size)
                for start in range(0, usable, batch_size):
                    yield block.slice(start, start + batch_size).to_batch(
                        self.feature_dim, self.label_dim
                    )
                if usable < n:
                    # Copy the tail so releasing the shard drops its mmap.
                    carry = block.slice(usable, n).copy()
                if release:
                    shard.close()
                    current = None
            if carry is not None and carry.num_examples:
                yield carry.to_batch(self.feature_dim, self.label_dim)
        finally:
            # Abandoned mid-shard: the resident shard's mmap must not leak
            # into the rest of the process's lifetime.
            if current is not None:
                current.close()
