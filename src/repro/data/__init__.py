"""Streaming data pipeline for real extreme-classification datasets.

``repro.datasets`` can eagerly parse an XC-repository file into a Python
list, which is fine for synthetic/small runs but cannot reach the paper's
Delicious-200K / Amazon-670K scale.  This package adds the streaming path:

* :mod:`repro.data.ingest` — one-time parse of the XC text format into
  memory-mapped CSR shards plus a checksummed JSON manifest
  (``python -m repro.data`` is the CLI);
* :mod:`repro.data.shards` — :class:`ShardedDataset`, bounded-memory random
  access and shard-shuffled epoch streaming over an ingested cache;
* :mod:`repro.data.prefetch` — :class:`BatchPrefetcher`, a background
  thread assembling ready CSR micro-batches ahead of the trainer.
"""

from repro.data.ingest import ShardCacheWriter, ingest_examples, ingest_xc_file
from repro.data.prefetch import BatchPrefetcher
from repro.data.shards import (
    ARRAY_NAMES,
    FORMAT_VERSION,
    MANIFEST_NAME,
    Shard,
    ShardInfo,
    ShardManifest,
    ShardedDataset,
    file_crc32,
    gather_csr_rows,
)

__all__ = [
    "ARRAY_NAMES",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "BatchPrefetcher",
    "Shard",
    "ShardCacheWriter",
    "ShardInfo",
    "ShardManifest",
    "ShardedDataset",
    "file_crc32",
    "gather_csr_rows",
    "ingest_examples",
    "ingest_xc_file",
]
