"""One-time ingest: XC-format text → memory-mapped CSR shard cache.

The Extreme Classification Repository ships Delicious-200K / Amazon-670K as
multi-gigabyte text files.  Parsing them into Python ``SparseExample``
objects on every run is both slow (text parsing dominates) and unbounded in
memory (490K objects at Amazon scale).  The ingest parses the text **once**,
streaming line by line, and writes fixed-size CSR shards plus a JSON
manifest (:mod:`repro.data.shards`); every later epoch reads the shards
through ``mmap`` at memory-bandwidth speed.

CLI::

    python -m repro.data <xc_file> <cache_dir> [--shard-size N] [--max-examples N]
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.shards import ShardInfo, ShardManifest, file_crc32
from repro.datasets.loaders import iter_xc_rows, read_xc_header
from repro.types import SparseExample

__all__ = ["ShardCacheWriter", "ingest_xc_file", "ingest_examples"]

DEFAULT_SHARD_SIZE = 8192


class ShardCacheWriter:
    """Streaming writer producing the shard cache one example at a time.

    ``add`` buffers rows; every ``shard_size`` rows a shard is flushed to
    disk and the buffers reset, so peak memory is one shard regardless of
    how many examples the source yields.  ``finalize`` flushes the remainder
    and writes the manifest.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        feature_dim: int,
        label_dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        source: str = "",
    ) -> None:
        if feature_dim <= 0 or label_dim <= 0:
            raise ValueError("feature_dim and label_dim must be positive")
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.feature_dim = int(feature_dim)
        self.label_dim = int(label_dim)
        self.shard_size = int(shard_size)
        self.source = source
        self._shards: list[ShardInfo] = []
        self._finalized = False
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._feat_indices: list[np.ndarray] = []
        self._feat_values: list[np.ndarray] = []
        self._labels: list[np.ndarray] = []

    @property
    def buffered_examples(self) -> int:
        return len(self._feat_indices)

    @property
    def num_examples(self) -> int:
        return (
            sum(shard.num_examples for shard in self._shards)
            + self.buffered_examples
        )

    def add(self, labels: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        """Append one example (validated against the cache's dimensions)."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        labels = np.asarray(labels, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape:
            raise ValueError("indices and values must align")
        if indices.size:
            if int(indices[0]) < 0 or int(indices[-1]) >= self.feature_dim:
                raise ValueError(
                    f"feature index out of range [0, {self.feature_dim})"
                )
            if np.any(np.diff(indices) <= 0):
                raise ValueError("feature indices must be sorted and unique")
        if labels.size and (labels.min() < 0 or labels.max() >= self.label_dim):
            raise ValueError(f"label index out of range [0, {self.label_dim})")
        self._feat_indices.append(indices)
        self._feat_values.append(values)
        self._labels.append(labels)
        if self.buffered_examples >= self.shard_size:
            self._flush_shard()

    def add_example(self, example: SparseExample) -> None:
        self.add(example.labels, example.features.indices, example.features.values)

    def _flush_shard(self) -> None:
        if not self.buffered_examples:
            return
        name = f"shard-{len(self._shards):05d}"
        feat_counts = np.array([a.size for a in self._feat_indices], dtype=np.int64)
        label_counts = np.array([a.size for a in self._labels], dtype=np.int64)
        arrays = {
            "feat_indptr": np.concatenate([[0], np.cumsum(feat_counts)]),
            "feat_indices": (
                np.concatenate(self._feat_indices)
                if feat_counts.sum()
                else np.zeros(0, dtype=np.int64)
            ),
            "feat_values": (
                np.concatenate(self._feat_values)
                if feat_counts.sum()
                else np.zeros(0, dtype=np.float64)
            ),
            "label_indptr": np.concatenate([[0], np.cumsum(label_counts)]),
            "label_indices": (
                np.concatenate(self._labels)
                if label_counts.sum()
                else np.zeros(0, dtype=np.int64)
            ),
        }
        checksums = {}
        for array_name, array in arrays.items():
            path = self.cache_dir / f"{name}.{array_name}.npy"
            np.save(path, array)
            checksums[array_name] = file_crc32(path)
        self._shards.append(
            ShardInfo(
                name=name,
                num_examples=self.buffered_examples,
                feature_nnz=int(feat_counts.sum()),
                label_nnz=int(label_counts.sum()),
                checksums=checksums,
            )
        )
        self._reset_buffers()

    def finalize(self) -> ShardManifest:
        """Flush the tail shard, write ``manifest.json`` and return it."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        self._flush_shard()
        self._finalized = True
        if not self._shards:
            raise ValueError("cannot finalize an empty shard cache")
        manifest = ShardManifest(
            feature_dim=self.feature_dim,
            label_dim=self.label_dim,
            num_examples=sum(shard.num_examples for shard in self._shards),
            shard_size=self.shard_size,
            shards=tuple(self._shards),
            source=self.source,
        )
        manifest.save(self.cache_dir)
        return manifest


def ingest_xc_file(
    path: str | Path,
    cache_dir: str | Path,
    shard_size: int = DEFAULT_SHARD_SIZE,
    max_examples: int | None = None,
) -> ShardManifest:
    """Parse an XC-format file once and write the CSR shard cache.

    Memory stays bounded by ``shard_size`` examples; the text is never
    materialised as a Python object list.  Returns the written manifest.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        num_examples, feature_dim, label_dim = read_xc_header(handle.readline())
    writer = ShardCacheWriter(
        cache_dir,
        feature_dim=feature_dim,
        label_dim=label_dim,
        shard_size=shard_size,
        source=str(path),
    )
    for labels, indices, values in iter_xc_rows(
        path, feature_dim, label_dim, max_examples
    ):
        writer.add(labels, indices, values)
    if max_examples is None and writer.num_examples != num_examples:
        raise ValueError(
            f"header promised {num_examples} examples but file contains "
            f"{writer.num_examples}"
        )
    return writer.finalize()


def ingest_examples(
    examples: Iterable[SparseExample],
    feature_dim: int,
    label_dim: int,
    cache_dir: str | Path,
    shard_size: int = DEFAULT_SHARD_SIZE,
    source: str = "memory",
) -> ShardManifest:
    """Shard an in-memory example stream (synthetic data, tests, benches)."""
    writer = ShardCacheWriter(
        cache_dir,
        feature_dim=feature_dim,
        label_dim=label_dim,
        shard_size=shard_size,
        source=source,
    )
    for example in examples:
        writer.add_example(example)
    return writer.finalize()
