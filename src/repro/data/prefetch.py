"""Background-thread batch prefetching.

Training alternates between two kinds of work: batch *assembly* (shard
reads, CSR gathers, ``SparseExample`` construction) and batch *math* (the
fused kernels).  :class:`BatchPrefetcher` moves assembly onto a daemon
thread feeding a bounded queue, so the trainer dequeues ready batches while
the next ones are being built — the classic input-pipeline overlap, with a
``depth``-batch bound keeping memory flat.

Determinism: one producer, one FIFO queue, one consumer — the consumer sees
exactly the iterator's order, so a seeded batch stream stays reproducible
with or without prefetching.
"""

from __future__ import annotations

import queue
import threading
from typing import Generic, Iterable, Iterator, TypeVar

__all__ = ["BatchPrefetcher"]

T = TypeVar("T")

_DONE = "done"
_ITEM = "item"
_ERROR = "error"


class BatchPrefetcher(Generic[T]):
    """Iterate ``items`` through a bounded background-filled queue.

    Usable as a context manager; exceptions raised by the source iterator
    are re-raised in the consumer thread at the position they occurred.
    ``close()`` (or leaving the ``with`` block) stops the producer promptly
    even if the consumer abandoned the stream mid-epoch.
    """

    def __init__(self, items: Iterable[T], depth: int = 4) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = int(depth)
        self._queue: queue.Queue = queue.Queue(maxsize=self.depth)
        self._stop = threading.Event()
        self._finished = False
        self.produced = 0
        self.consumed = 0
        self._thread = threading.Thread(
            target=self._produce,
            args=(iter(items),),
            name="batch-prefetcher",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer
    # ------------------------------------------------------------------
    def _put(self, message: tuple[str, object]) -> bool:
        """Blocking put that aborts promptly once ``close()`` is called."""
        while not self._stop.is_set():
            try:
                self._queue.put(message, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self, iterator: Iterator[T]) -> None:
        try:
            for item in iterator:
                if not self._put((_ITEM, item)):
                    return
                self.produced += 1
            self._put((_DONE, None))
        except BaseException as exc:  # noqa: BLE001 — relayed to the consumer
            self._put((_ERROR, exc))
        finally:
            # The source may hold real resources (a ShardedDataset generator
            # keeps the current shard's mmap resident).  When the consumer
            # abandons the stream mid-epoch, ``close()`` stops this thread
            # between items — without this, the half-consumed iterator (and
            # its open shard) would linger until garbage collection.
            close = getattr(iterator, "close", None)
            if close is not None:
                try:
                    close()
                # A close() failure must not mask an error already relayed.
                except Exception:  # repro: allow[exc] best-effort cleanup
                    pass

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def __iter__(self) -> "BatchPrefetcher[T]":
        return self

    def __next__(self) -> T:
        if self._finished:
            raise StopIteration
        # A stop-aware timed get, not a bare blocking one: if close() runs
        # while we are parked on an empty queue, the producer exits without
        # queueing a sentinel and close()'s drain may consume anything it
        # did queue — an un-timed get() would then block forever.
        while True:
            try:
                kind, payload = self._queue.get(timeout=0.05)
                break
            except queue.Empty:
                if self._stop.is_set():
                    raise StopIteration from None
        if kind == _ITEM:
            self.consumed += 1
            return payload  # type: ignore[return-value]
        self._finished = True
        if kind == _ERROR:
            raise payload  # type: ignore[misc]
        raise StopIteration

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop the producer and release the queue (idempotent)."""
        self._stop.set()
        self._finished = True
        # Drain so a producer blocked on a full queue can observe the stop.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BatchPrefetcher[T]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
