"""CLI for the shard-cache ingest: ``python -m repro.data`` / ``repro-ingest``.

Examples::

    # One-time ingest of a downloaded XC repository file.
    python -m repro.data data/deliciousLarge_train.txt data/delicious-shards

    # Smoke-ingest only the first 10K examples, 2K per shard.
    python -m repro.data data/amazon_train.txt /tmp/amz --shard-size 2048 \
        --max-examples 10000

    # Verify an existing cache against its manifest checksums.
    python -m repro.data --verify-only data/delicious-shards
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.data.ingest import DEFAULT_SHARD_SIZE, ingest_xc_file
from repro.data.shards import ARRAY_NAMES, ShardedDataset, ShardManifest


def _cache_bytes(cache_dir: Path, manifest: ShardManifest) -> int:
    return sum(
        (cache_dir / shard.filename(array)).stat().st_size
        for shard in manifest.shards
        for array in ARRAY_NAMES
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-ingest",
        description="Ingest an XC-format dataset file into a mmap CSR shard cache.",
    )
    parser.add_argument("source", nargs="?", help="XC-format input file")
    parser.add_argument("cache_dir", nargs="?", help="output shard-cache directory")
    parser.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        help=f"examples per shard (default {DEFAULT_SHARD_SIZE})",
    )
    parser.add_argument(
        "--max-examples",
        type=int,
        default=None,
        help="truncate the input (smoke runs on the full-size corpora)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-read and checksum-verify the cache after ingesting",
    )
    parser.add_argument(
        "--verify-only",
        metavar="CACHE_DIR",
        default=None,
        help="skip ingesting; checksum-verify an existing cache and exit",
    )
    args = parser.parse_args(argv)

    if args.verify_only is not None:
        dataset = ShardedDataset(args.verify_only, verify_checksums=True)
        print(
            f"ok: {len(dataset)} examples in {dataset.num_shards} shards, "
            "all checksums match"
        )
        return 0

    if not args.source or not args.cache_dir:
        parser.error("source and cache_dir are required unless --verify-only is used")

    started = time.perf_counter()
    manifest = ingest_xc_file(
        args.source,
        args.cache_dir,
        shard_size=args.shard_size,
        max_examples=args.max_examples,
    )
    elapsed = time.perf_counter() - started
    cache_dir = Path(args.cache_dir)
    total_bytes = _cache_bytes(cache_dir, manifest)
    print(
        f"ingested {manifest.num_examples} examples "
        f"({manifest.feature_dim} features x {manifest.label_dim} labels) "
        f"into {manifest.num_shards} shards in {elapsed:.2f}s "
        f"({manifest.num_examples / max(elapsed, 1e-9):.0f} examples/s)"
    )
    print(
        f"cache: {cache_dir} — {total_bytes / 1e6:.1f} MB, "
        f"{manifest.total_feature_nnz} feature nnz, "
        f"{manifest.total_label_nnz} label nnz"
    )
    if args.verify:
        ShardedDataset(cache_dir, verify_checksums=True)
        print("verify: all shard checksums match the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
