"""Sparse linear-algebra helpers used by the SLIDE hot paths.

These helpers are intentionally tiny wrappers around NumPy fancy indexing;
the important property is that their cost is proportional to the number of
*active* indices, never to the full layer width.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray

__all__ = [
    "sparse_dense_matvec",
    "sparse_rows_dot",
    "normalize_rows",
    "random_sparse_matrix",
]


def sparse_dense_matvec(
    weights: FloatArray,
    row_indices: IntArray,
    col_indices: IntArray,
    col_values: FloatArray,
) -> FloatArray:
    """Compute ``weights[row_indices][:, col_indices] @ col_values``.

    This is the core sparse forward-pass primitive: ``row_indices`` are the
    active neurons of the current layer, ``col_indices``/``col_values`` the
    sparse input from the previous layer.
    """
    if row_indices.size == 0 or col_indices.size == 0:
        return np.zeros(row_indices.shape[0], dtype=np.float64)
    submatrix = weights[np.ix_(row_indices, col_indices)]
    return submatrix @ col_values


def sparse_rows_dot(
    weights: FloatArray,
    row_indices: IntArray,
    dense_vector: FloatArray,
) -> FloatArray:
    """Dot each selected weight row with a dense vector."""
    if row_indices.size == 0:
        return np.zeros(0, dtype=np.float64)
    return weights[row_indices] @ dense_vector


def normalize_rows(matrix: FloatArray, epsilon: float = 1e-12) -> FloatArray:
    """Return a copy of ``matrix`` with each row scaled to unit L2 norm."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, epsilon)


def random_sparse_matrix(
    rows: int,
    cols: int,
    density: float,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> FloatArray:
    """Generate a dense matrix whose entries are zero with prob ``1-density``.

    Used by tests and the synthetic dataset generator; small enough sizes that
    a dense representation is fine.
    """
    if not 0 < density <= 1:
        raise ValueError("density must lie in (0, 1]")
    values = rng.normal(scale=scale, size=(rows, cols))
    mask = rng.random((rows, cols)) < density
    return values * mask
