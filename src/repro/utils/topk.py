"""Top-k selection helpers shared by sampling strategies and metrics."""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray

__all__ = ["top_k_indices", "threshold_indices"]


def top_k_indices(scores: FloatArray, k: int) -> IntArray:
    """Indices of the ``k`` largest entries of ``scores``, descending order.

    Uses ``argpartition`` so the cost is ``O(n + k log k)`` rather than a full
    sort; ties are broken arbitrarily (matching the behaviour of the C++
    reference implementation's partial sort).
    """
    scores = np.asarray(scores)
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    if k >= scores.shape[0]:
        return np.argsort(scores)[::-1].astype(np.int64)
    partition = np.argpartition(scores, -k)[-k:]
    order = np.argsort(scores[partition])[::-1]
    return partition[order].astype(np.int64)


def threshold_indices(scores: FloatArray, threshold: float) -> IntArray:
    """Indices whose score is greater than or equal to ``threshold``."""
    scores = np.asarray(scores)
    return np.flatnonzero(scores >= threshold).astype(np.int64)
