"""Small shared utilities: RNG helpers, sparse math, validation."""

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.sparse import (
    sparse_dense_matvec,
    sparse_rows_dot,
    normalize_rows,
    random_sparse_matrix,
)
from repro.utils.topk import top_k_indices, threshold_indices
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_array_1d,
    check_in_range,
)

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "sparse_dense_matvec",
    "sparse_rows_dot",
    "normalize_rows",
    "random_sparse_matrix",
    "top_k_indices",
    "threshold_indices",
    "check_positive",
    "check_probability",
    "check_array_1d",
    "check_in_range",
]
