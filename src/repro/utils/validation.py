"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_probability", "check_array_1d", "check_in_range"]


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_array_1d(array: np.ndarray, name: str) -> np.ndarray:
    """Coerce to ``ndarray`` and raise unless it is one-dimensional."""
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


def check_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
