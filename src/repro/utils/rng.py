"""Deterministic random-number-generator helpers.

All randomness in the library flows through :class:`numpy.random.Generator`
instances derived from explicit integer seeds, so every experiment in the
benchmark harness is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed: int | np.random.Generator | None, stream: int = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(seed, stream)``.

    Passing an existing generator returns it unchanged (the ``stream``
    argument is ignored in that case), which lets call sites accept either a
    seed or a generator without branching.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if seed < 0:
        raise ValueError("seed must be non-negative")
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count <= 0:
        raise ValueError("count must be positive")
    seq = np.random.SeedSequence(entropy=seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
