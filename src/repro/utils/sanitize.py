"""Runtime lock sanitizer: lock-order and held-while-blocking detection.

The static rules in ``tools/lint`` catch what is visible in the source;
this module catches what only shows up in *execution order*.  When enabled
(``REPRO_SANITIZE=1`` in the environment, or :func:`enable` from a test)
every instrumented lock — :class:`repro.utils.rwlock.ReadWriteLock` and
any mutex built via :func:`lock` — reports its acquisitions to a global
:class:`LockSanitizer`, which maintains:

* a per-thread stack of currently held locks, and
* a global directed graph of observed acquisition orders, keyed by lock
  *name* (role), not instance — lock ordering is a protocol between roles.

Two violation classes are recorded (never raised — detection must not
perturb the schedule being observed; tests call :meth:`assert_clean`):

* **lock-order inversion** — lock B acquired while holding A after the
  edge A→B's reverse (B→A) was already observed anywhere in the process.
  Two threads running those two orders concurrently are a textbook
  deadlock; observing both orders at all is the contract violation.
* **held-while-blocking** — a known blocking operation (instrumented via
  :func:`note_blocking` at the repo's deliberate sleep/backoff sites)
  executed while *any* sanitized lock is held.

Overhead when disabled is one boolean check per acquisition, so the
instrumentation stays on permanently in the production classes; CI runs a
tier-1 shard with ``REPRO_SANITIZE=1`` over the hot-swap and router suites
and fails the run if any report was collected (see
``tests/conftest.py``).

Usage::

    from repro.utils import sanitize

    sanitize.get_sanitizer().enable()
    ... exercise concurrent code ...
    sanitize.get_sanitizer().assert_clean()
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "SanitizerReport",
    "LockSanitizer",
    "SanitizedLock",
    "get_sanitizer",
    "lock",
    "note_blocking",
    "enabled_from_env",
]


@dataclass(frozen=True)
class SanitizerReport:
    """One recorded violation."""

    kind: str  # "lock_order_inversion" | "held_while_blocking"
    thread: str
    detail: str

    def format(self) -> str:
        return f"[{self.kind}] {self.thread}: {self.detail}"


class LockSanitizer:
    """Process-global acquisition-order recorder.

    Thread-safe; its internal mutex is a leaf lock (never held while
    acquiring an instrumented lock), so the sanitizer itself cannot
    introduce an inversion.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._mutex = threading.Lock()
        self._local = threading.local()
        # (held_name, acquired_name) -> thread that first observed the edge
        self._edges: dict[tuple[str, str], str] = {}
        self._reports: list[SanitizerReport] = []

    # ------------------------------------------------------------------
    # Switch
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    # Hooks called by instrumented locks
    # ------------------------------------------------------------------
    def _held(self) -> list[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def on_attempt(self, name: str) -> None:
        """Record order edges at *attempt* time (before possibly blocking).

        Waiting for ``name`` while holding the rest of the stack is exactly
        the state a deadlock freezes in, so the edge must be recorded even
        if the acquisition never completes.
        """
        if not self._enabled:
            return
        held = self._held()
        if not held:
            return
        thread = threading.current_thread().name
        with self._mutex:
            for holder in dict.fromkeys(held):  # de-dup, preserve order
                if holder == name:
                    continue
                edge = (holder, name)
                reverse = (name, holder)
                if reverse in self._edges and edge not in self._edges:
                    self._reports.append(
                        SanitizerReport(
                            kind="lock_order_inversion",
                            thread=thread,
                            detail=(
                                f"acquiring '{name}' while holding '{holder}', "
                                f"but the opposite order ('{name}' before "
                                f"'{holder}') was already observed on thread "
                                f"'{self._edges[reverse]}'"
                            ),
                        )
                    )
                self._edges.setdefault(edge, thread)

    def on_acquired(self, name: str) -> None:
        if not self._enabled:
            return
        self._held().append(name)

    def on_release(self, name: str) -> None:
        if not self._enabled:
            return
        held = self._held()
        # Remove the most recent occurrence (read locks may nest).
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def note_blocking(self, operation: str) -> None:
        """Record that a known blocking operation is about to run."""
        if not self._enabled:
            return
        held = self._held()
        if not held:
            return
        with self._mutex:
            self._reports.append(
                SanitizerReport(
                    kind="held_while_blocking",
                    thread=threading.current_thread().name,
                    detail=(
                        f"blocking operation '{operation}' while holding "
                        f"{', '.join(repr(name) for name in held)}"
                    ),
                )
            )

    @contextmanager
    def blocking(self, operation: str) -> Iterator[None]:
        self.note_blocking(operation)
        yield

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def reports(self) -> list[SanitizerReport]:
        with self._mutex:
            return list(self._reports)

    def clear(self) -> None:
        """Drop recorded reports and order edges (held stacks are live state
        owned by their threads and are left alone)."""
        with self._mutex:
            self._reports.clear()
            self._edges.clear()

    def assert_clean(self) -> None:
        reports = self.reports()
        if reports:
            rendered = "\n".join(f"  {report.format()}" for report in reports)
            raise AssertionError(
                f"lock sanitizer recorded {len(reports)} violation(s):\n{rendered}"
            )


_SANITIZER = LockSanitizer()


def get_sanitizer() -> LockSanitizer:
    """The process-global sanitizer instance."""
    return _SANITIZER


def enabled_from_env(env: "os._Environ[str] | dict[str, str] | None" = None) -> bool:
    """Does the environment ask for sanitization (``REPRO_SANITIZE=1``)?"""
    source = os.environ if env is None else env
    return source.get("REPRO_SANITIZE", "") == "1"


def note_blocking(operation: str) -> None:
    """Module-level convenience for :meth:`LockSanitizer.note_blocking`."""
    _SANITIZER.note_blocking(operation)


class SanitizedLock:
    """A ``threading.Lock`` reporting to the sanitizer under a role name.

    Drop-in for the subset of the ``Lock`` API this repo uses (``with``,
    ``acquire``/``release``, ``locked``).  Overhead when the sanitizer is
    disabled: one attribute load and boolean check per call.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _SANITIZER.on_attempt(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _SANITIZER.on_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        _SANITIZER.on_release(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<SanitizedLock {self.name!r} {state}>"


def lock(name: str) -> SanitizedLock:
    """Build a named mutex wired to the sanitizer.

    Always returns the instrumented wrapper: enabling the sanitizer
    mid-process (a test's ``enable()``) must cover locks created earlier.
    """
    return SanitizedLock(name)


# Honour the environment at import time so every process in a
# REPRO_SANITIZE=1 run (including multiprocessing children, which inherit
# the environment) is born instrumented.
if enabled_from_env():  # pragma: no cover - exercised by the CI sanitize shard
    _SANITIZER.enable()
