"""A writer-preferring read-write lock for the hot-reload swap gate.

The serving engines let many pool workers score batches concurrently
(readers) while a checkpoint swap needs the weights briefly exclusive
(writer).  A plain mutex would serialise every inference batch; this lock
lets readers overlap and only blocks them for the duration of a swap.

Writer preference matters here: under sustained load there is *always* a
reader active, so a reader-preferring lock would starve the swap forever and
hot reload would never complete.  Once a writer is waiting, new readers
queue behind it; the writer gets in as soon as the in-flight readers drain —
that drain time is exactly the "reload blip" the serving benchmarks measure.

When the lock sanitizer is enabled (``REPRO_SANITIZE=1`` or
``repro.utils.sanitize.get_sanitizer().enable()``) every acquisition is
reported under the lock's ``name`` so lock-order inversions against other
instrumented locks show up in CI; see :mod:`repro.utils.sanitize`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.utils import sanitize

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer-preferring.

    ``name`` identifies the lock's *role* to the sanitizer (e.g.
    ``"engine.swap"``); instances sharing a role share ordering
    constraints.  Read and write sides report as ``<name>:r`` and
    ``<name>:w`` — a reader and a writer of the same lock interleaving
    with a third lock are distinct ordering facts.
    """

    def __init__(self, name: str = "rwlock") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._sanitizer = sanitize.get_sanitizer()

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        self._sanitizer.on_attempt(f"{self.name}:r")
        with self._cond:
            # New readers wait while a writer holds the lock *or* is queued,
            # so a continuous stream of readers cannot starve the writer.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._sanitizer.on_acquired(f"{self.name}:r")

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        self._sanitizer.on_release(f"{self.name}:r")

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        self._sanitizer.on_attempt(f"{self.name}:w")
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        self._sanitizer.on_acquired(f"{self.name}:w")

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
        self._sanitizer.on_release(f"{self.name}:w")

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
