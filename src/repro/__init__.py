"""repro — a Python reproduction of SLIDE (Sub-LInear Deep learning Engine).

SLIDE (Chen et al., MLSys 2020) trains very wide fully connected networks by
replacing dense matrix multiplication with adaptive sparsity: Locality
Sensitive Hash tables over each layer's neurons select, per input, the small
set of neurons worth computing, and backpropagation touches only those.

Public API overview
-------------------
* :mod:`repro.core` — ``SlideNetwork`` / ``SlideTrainer``, the paper's
  contribution.
* :mod:`repro.hashing`, :mod:`repro.lsh`, :mod:`repro.sampling` — the LSH
  substrate (hash families, bounded-bucket tables, sampling strategies).
* :mod:`repro.kernels` — batched sparse kernels: whole-micro-batch LSH
  hashing and the fused union-active-set forward/backward used by
  synchronous training and serving.
* :mod:`repro.baselines` — dense full-softmax and sampled-softmax baselines.
* :mod:`repro.datasets` — synthetic extreme-classification data and the XC
  repository loader.
* :mod:`repro.data` — the streaming pipeline for real XC datasets: one-time
  ingest into memory-mapped CSR shards (``python -m repro.data``), the
  bounded-memory ``ShardedDataset`` and the background ``BatchPrefetcher``.
* :mod:`repro.parallel` — HOGWILD-style asynchronous update simulation,
  conflict analysis, and real multi-process training over shared-memory
  parameters (``SharedParamStore`` / ``ProcessHogwildTrainer``).
* :mod:`repro.perf` — operation counting, calibrated device profiles and the
  wall-clock / CPU-counter / memory models behind the paper's figures, plus
  the real-measurement latency histogram used by the serving path.
* :mod:`repro.harness` — one driver per table and figure of the evaluation,
  plus the serving accuracy-vs-latency sweep.
* :mod:`repro.serving` — beyond the paper: checkpointing, the
  LSH-accelerated inference engine, micro-batching, a multi-worker engine
  pool, and an HTTP/JSON model server (``repro-serve``).
"""

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core import SlideNetwork, SlideTrainer
from repro.types import SparseBatch, SparseExample, SparseVector

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LayerConfig",
    "LSHConfig",
    "OptimizerConfig",
    "RebuildScheduleConfig",
    "SamplingConfig",
    "SlideNetworkConfig",
    "TrainingConfig",
    "SlideNetwork",
    "SlideTrainer",
    "SparseBatch",
    "SparseExample",
    "SparseVector",
]
