"""Shared type aliases and light-weight containers used across the package.

The SLIDE reproduction works almost exclusively with *sparse* inputs:
extreme-classification datasets store each example as a short list of
``(feature_index, value)`` pairs and each example carries a (usually small)
set of positive label indices.  The containers defined here are deliberately
minimal -- they are plain ``dataclasses`` wrapping NumPy arrays -- so that
the hot paths in :mod:`repro.core` can index into them without any
abstraction overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "FloatArray",
    "IntArray",
    "SparseVector",
    "SparseExample",
    "SparseBatch",
    "dense_features",
]

# Convenience aliases.  NumPy's typing story for dtypes is verbose; these keep
# signatures readable without pulling in ``numpy.typing`` generics everywhere.
FloatArray = np.ndarray
IntArray = np.ndarray


@dataclass(frozen=True)
class SparseVector:
    """A sparse vector represented as parallel index/value arrays.

    Parameters
    ----------
    indices:
        Sorted, unique ``int64`` indices of the non-zero coordinates.
    values:
        ``float64`` values aligned with ``indices``.
    dimension:
        The ambient dimensionality of the vector.
    """

    indices: IntArray
    values: FloatArray
    dimension: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be one-dimensional")
        if indices.shape[0] != values.shape[0]:
            raise ValueError(
                f"indices ({indices.shape[0]}) and values ({values.shape[0]}) "
                "must have the same length"
            )
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if indices.size and (indices.min() < 0 or indices.max() >= self.dimension):
            raise ValueError("indices out of range for the given dimension")
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.indices.shape[0])

    def to_dense(self) -> FloatArray:
        """Materialise the vector as a dense ``float64`` array."""
        dense = np.zeros(self.dimension, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    def dot(self, dense_vector: FloatArray) -> float:
        """Inner product with a dense vector of matching dimension."""
        dense_vector = np.asarray(dense_vector, dtype=np.float64)
        if dense_vector.shape[0] != self.dimension:
            raise ValueError("dimension mismatch in SparseVector.dot")
        return float(np.dot(dense_vector[self.indices], self.values))

    def l2_norm(self) -> float:
        """Euclidean norm of the vector."""
        return float(np.sqrt(np.dot(self.values, self.values)))

    @classmethod
    def from_dense(cls, dense: FloatArray) -> "SparseVector":
        """Build a :class:`SparseVector` from a dense array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        indices = np.flatnonzero(dense)
        return cls(indices=indices, values=dense[indices], dimension=dense.shape[0])


@dataclass(frozen=True)
class SparseExample:
    """One training/test example: sparse features plus a set of labels."""

    features: SparseVector
    labels: IntArray

    def __post_init__(self) -> None:
        labels = np.unique(np.asarray(self.labels, dtype=np.int64))
        object.__setattr__(self, "labels", labels)

    @property
    def num_labels(self) -> int:
        return int(self.labels.shape[0])


@dataclass
class SparseBatch:
    """A mini-batch of sparse examples.

    ``SparseBatch`` is a thin list wrapper with a couple of conveniences used
    by both SLIDE and the dense baselines (densification, label matrices).
    """

    examples: list[SparseExample] = field(default_factory=list)
    feature_dim: int = 0
    label_dim: int = 0
    # CSR view of the batch's features (indptr, indices, values), set by
    # :meth:`from_csr` when the batch was assembled by the data pipeline.
    # Purely an acceleration cache for :meth:`to_dense_features`; it must
    # stay consistent with ``examples`` (never mutate one without the other).
    features_csr: tuple[IntArray, IntArray, FloatArray] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.examples:
            dims = {ex.features.dimension for ex in self.examples}
            if len(dims) != 1:
                raise ValueError("all examples in a batch must share feature_dim")
            inferred = dims.pop()
            if self.feature_dim and self.feature_dim != inferred:
                raise ValueError("feature_dim does not match examples")
            self.feature_dim = inferred
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if self.label_dim <= 0:
            raise ValueError("label_dim must be positive")
        for ex in self.examples:
            if ex.labels.size and ex.labels.max() >= self.label_dim:
                raise ValueError("label index out of range for label_dim")

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def __getitem__(self, item: int) -> SparseExample:
        return self.examples[item]

    def to_dense_features(self) -> FloatArray:
        """Dense ``(batch, feature_dim)`` feature matrix (for baselines)."""
        if self.features_csr is not None:
            indptr, indices, values = self.features_csr
            dense = np.zeros((len(self.examples), self.feature_dim), dtype=np.float64)
            rows = np.repeat(np.arange(len(self.examples)), np.diff(indptr))
            dense[rows, indices] = values
            return dense
        return dense_features(self.examples, self.feature_dim)

    def to_dense_labels(self) -> FloatArray:
        """Dense multi-hot ``(batch, label_dim)`` label matrix."""
        dense = np.zeros((len(self.examples), self.label_dim), dtype=np.float64)
        for row, ex in enumerate(self.examples):
            if ex.labels.size:
                dense[row, ex.labels] = 1.0
        return dense

    def average_feature_nnz(self) -> float:
        """Mean number of non-zero features per example."""
        if not self.examples:
            return 0.0
        return float(np.mean([ex.features.nnz for ex in self.examples]))

    @classmethod
    def from_examples(
        cls,
        examples: Iterable[SparseExample],
        feature_dim: int,
        label_dim: int,
    ) -> "SparseBatch":
        return cls(examples=list(examples), feature_dim=feature_dim, label_dim=label_dim)

    @classmethod
    def from_csr(
        cls,
        feat_indptr: IntArray,
        feat_indices: IntArray,
        feat_values: FloatArray,
        label_indptr: IntArray,
        label_indices: IntArray,
        feature_dim: int,
        label_dim: int,
    ) -> "SparseBatch":
        """Assemble a batch from CSR feature and label arrays.

        The streaming data pipeline (:mod:`repro.data`) stores examples as
        CSR shards; this constructor turns a row range of those arrays into a
        batch without re-sorting or re-validating per-example index order
        (the ingest path guarantees sorted, unique indices per row).  The
        feature CSR triple is kept on the batch so dense scatters skip the
        per-example loop.
        """
        feat_indptr = np.asarray(feat_indptr, dtype=np.int64)
        label_indptr = np.asarray(label_indptr, dtype=np.int64)
        if feat_indptr.shape != label_indptr.shape:
            raise ValueError("feature and label indptr must describe the same rows")
        feat_indices = np.asarray(feat_indices, dtype=np.int64)
        feat_values = np.asarray(feat_values, dtype=np.float64)
        label_indices = np.asarray(label_indices, dtype=np.int64)
        examples = []
        for row in range(feat_indptr.shape[0] - 1):
            lo, hi = int(feat_indptr[row]), int(feat_indptr[row + 1])
            llo, lhi = int(label_indptr[row]), int(label_indptr[row + 1])
            examples.append(
                SparseExample(
                    features=SparseVector(
                        indices=feat_indices[lo:hi],
                        values=feat_values[lo:hi],
                        dimension=feature_dim,
                    ),
                    labels=label_indices[llo:lhi],
                )
            )
        batch = cls(examples=examples, feature_dim=feature_dim, label_dim=label_dim)
        start, stop = int(feat_indptr[0]), int(feat_indptr[-1])
        batch.features_csr = (
            feat_indptr - start,
            feat_indices[start:stop],
            feat_values[start:stop],
        )
        return batch


def dense_features(
    examples: Sequence[SparseExample], feature_dim: int
) -> FloatArray:
    """Dense ``(len(examples), feature_dim)`` matrix of the examples' features."""
    dense = np.zeros((len(examples), feature_dim), dtype=np.float64)
    for row, example in enumerate(examples):
        dense[row, example.features.indices] = example.features.values
    return dense


def as_index_array(indices: Sequence[int] | IntArray) -> IntArray:
    """Normalise a sequence of indices to a unique, sorted ``int64`` array."""
    return np.unique(np.asarray(indices, dtype=np.int64))
