"""Bucket insertion policies (paper Section 4.2, Table 3).

When a bucket is already at its size limit, SLIDE needs a replacement rule.
The paper implements two:

* **Reservoir sampling** (Vitter, 1985) — the new item replaces a uniformly
  random existing slot with probability ``capacity / seen``, which preserves
  the adaptive-sampling property of the LSH tables (Wang et al., 2018).
* **FIFO** — the new item always replaces the oldest one.

Each policy exposes three entry points:

* ``insert(bucket, item)`` — the sequential reference semantics on the
  object-per-bucket :class:`~repro.lsh.bucket.Bucket` (pinned by the policy
  unit tests);
* ``insert_flat(store, row, item)`` — the same sequential semantics on one
  row of a :class:`~repro.lsh.bucket.FlatBuckets` slot matrix;
* ``insert_many_flat(store, rows, items)`` — the batched kernel: the whole
  item batch is applied with array ops (one stable sort to group items by
  bucket, then vectorised slot arithmetic), producing the same final bucket
  contents as inserting the items one by one in order (for reservoir, up to
  the draws — the batched path consumes the generator in one vectorised
  request instead of one scalar draw per overflowing arrival).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.lsh.bucket import FlatBuckets
from repro.types import IntArray

__all__ = ["InsertionPolicy", "FIFOPolicy", "ReservoirPolicy", "make_insertion_policy"]


def _group_by_row(rows: IntArray, items: IntArray):
    """Stable-sort ``(rows, items)`` by row and return group bookkeeping.

    Returns ``(sorted_rows, sorted_items, unique_rows, counts, ranks)`` where
    ``ranks`` is each sorted item's 0-based arrival position within its
    bucket group (stable sort preserves the original insertion order inside
    each group).
    """
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_items = items[order]
    unique_rows, starts, counts = np.unique(
        sorted_rows, return_index=True, return_counts=True
    )
    ranks = np.arange(sorted_rows.size, dtype=np.int64) - np.repeat(starts, counts)
    return sorted_rows, sorted_items, unique_rows, counts, ranks


class InsertionPolicy(abc.ABC):
    """Decides what happens when an item arrives at a full bucket."""

    name: str = "base"

    @abc.abstractmethod
    def insert(self, bucket: "Bucket", item: int) -> bool:
        """Insert ``item`` into ``bucket``; return True if it was stored."""

    @abc.abstractmethod
    def insert_flat(self, store: FlatBuckets, row: int, item: int) -> bool:
        """Sequential insert into one row of a flat slot matrix."""

    @abc.abstractmethod
    def insert_many_flat(
        self, store: FlatBuckets, rows: IntArray, items: IntArray
    ) -> int:
        """Batched insert; returns the number of items actually stored."""


class FIFOPolicy(InsertionPolicy):
    """Replace the oldest item when the bucket is full (always stores).

    On the flat layout FIFO buckets keep their slots in arrival order, so the
    sequential overflow step is a left shift and the batched step keeps, per
    bucket, the newest ``capacity`` of (existing items + batch arrivals).
    """

    name = "fifo"

    def insert(self, bucket, item: int) -> bool:
        if len(bucket) < bucket.capacity:
            bucket.append(item)
        else:
            bucket.replace(bucket.oldest_slot(), item)
        return True

    def insert_flat(self, store: FlatBuckets, row: int, item: int) -> bool:
        capacity = store.capacity
        size = int(store.sizes[row])
        if size < capacity:
            store.slots[row, size] = item
            store.sizes[row] = size + 1
        else:
            store.slots[row, : capacity - 1] = store.slots[row, 1:capacity]
            store.slots[row, capacity - 1] = item
        store.seen[row] += 1
        return True

    def insert_many_flat(
        self, store: FlatBuckets, rows: IntArray, items: IntArray
    ) -> int:
        if rows.size == 0:
            return 0
        capacity = store.capacity
        sorted_rows, sorted_items, unique_rows, counts, ranks = _group_by_row(
            rows, items
        )
        sizes = store.sizes[unique_rows]
        new_keep = np.minimum(counts, capacity)
        exist_keep = np.minimum(sizes, np.maximum(capacity - counts, 0))
        drop = sizes - exist_keep

        # Shift surviving existing items to the front (drop the oldest).
        block = store.slots[unique_rows]
        gather = np.minimum(
            drop[:, None] + np.arange(capacity, dtype=np.int64)[None, :],
            capacity - 1,
        )
        shifted = np.take_along_axis(block, gather, axis=1)
        shifted[np.arange(capacity)[None, :] >= exist_keep[:, None]] = -1
        store.slots[unique_rows] = shifted

        # Scatter the surviving batch items behind them, in arrival order.
        keep_mask = ranks >= np.repeat(counts - new_keep, counts)
        dest = np.repeat(exist_keep - (counts - new_keep), counts) + ranks
        store.slots[sorted_rows[keep_mask], dest[keep_mask]] = sorted_items[keep_mask]

        store.sizes[unique_rows] = exist_keep + new_keep
        store.seen[unique_rows] += counts
        return int(rows.size)


class ReservoirPolicy(InsertionPolicy):
    """Vitter's reservoir sampling replacement.

    Each bucket tracks how many items it has *seen*; the ``n``-th arrival is
    kept with probability ``capacity / n`` and, if kept, overwrites a
    uniformly random slot.  The result is a uniform sample of everything ever
    hashed to the bucket, which is exactly what the adaptive-sampling view of
    LSH requires.
    """

    name = "reservoir"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def insert(self, bucket, item: int) -> bool:
        if len(bucket) < bucket.capacity:
            bucket.append(item)
            return True
        slot = int(self._rng.integers(0, bucket.seen + 1))
        if slot < bucket.capacity:
            bucket.replace(slot, item)
            return True
        bucket.count_rejection()
        return False

    def insert_flat(self, store: FlatBuckets, row: int, item: int) -> bool:
        size = int(store.sizes[row])
        if size < store.capacity:
            store.slots[row, size] = item
            store.sizes[row] = size + 1
            store.seen[row] += 1
            return True
        slot = int(self._rng.integers(0, int(store.seen[row]) + 1))
        store.seen[row] += 1
        if slot < store.capacity:
            store.slots[row, slot] = item
            return True
        store.rejections[row] += 1
        return False

    def insert_many_flat(
        self, store: FlatBuckets, rows: IntArray, items: IntArray
    ) -> int:
        if rows.size == 0:
            return 0
        capacity = store.capacity
        sorted_rows, sorted_items, unique_rows, counts, ranks = _group_by_row(
            rows, items
        )
        sizes = np.repeat(store.sizes[unique_rows], counts)
        seen_before = np.repeat(store.seen[unique_rows], counts) + ranks

        # Arrivals that still find a free slot append in order.
        append = sizes + ranks < capacity
        store.slots[sorted_rows[append], (sizes + ranks)[append]] = sorted_items[append]

        # The rest run the reservoir test: the n-th arrival draws a slot in
        # [0, n) (n = attempts seen so far, including this batch) and is kept
        # only if the slot lands inside the bucket.
        overflow = ~append
        stored = int(np.count_nonzero(append))
        rejected_rows = np.zeros(0, dtype=np.int64)
        if np.any(overflow):
            draws = self._rng.integers(0, seen_before[overflow] + 1)
            accept = draws < capacity
            target_rows = sorted_rows[overflow][accept]
            target_slots = draws[accept]
            target_items = sorted_items[overflow][accept]
            if target_rows.size:
                # Later arrivals overwrite earlier ones hitting the same slot
                # (sequential last-wins), made explicit by deduplicating on
                # (row, slot) and keeping the final occurrence.
                pair = target_rows * capacity + target_slots
                last = pair.size - 1 - np.unique(pair[::-1], return_index=True)[1]
                store.slots[target_rows[last], target_slots[last]] = target_items[last]
            stored += int(np.count_nonzero(accept))
            rejected_rows = sorted_rows[overflow][~accept]

        if rejected_rows.size:
            rej_rows, rej_counts = np.unique(rejected_rows, return_counts=True)
            store.rejections[rej_rows] += rej_counts
        store.sizes[unique_rows] += np.minimum(
            counts, np.maximum(capacity - store.sizes[unique_rows], 0)
        )
        store.seen[unique_rows] += counts
        return stored


def make_insertion_policy(
    name: str, rng: np.random.Generator | None = None
) -> InsertionPolicy:
    """Build an insertion policy by name (``fifo`` or ``reservoir``)."""
    lowered = name.lower()
    if lowered == "fifo":
        return FIFOPolicy()
    if lowered == "reservoir":
        return ReservoirPolicy(rng=rng)
    raise ValueError(f"unknown insertion policy {name!r}")
