"""Bucket insertion policies (paper Section 4.2, Table 3).

When a bucket is already at its size limit, SLIDE needs a replacement rule.
The paper implements two:

* **Reservoir sampling** (Vitter, 1985) — the new item replaces a uniformly
  random existing slot with probability ``capacity / seen``, which preserves
  the adaptive-sampling property of the LSH tables (Wang et al., 2018).
* **FIFO** — the new item always replaces the oldest one.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["InsertionPolicy", "FIFOPolicy", "ReservoirPolicy", "make_insertion_policy"]


class InsertionPolicy(abc.ABC):
    """Decides what happens when an item arrives at a full bucket."""

    name: str = "base"

    @abc.abstractmethod
    def insert(self, bucket: "Bucket", item: int) -> bool:
        """Insert ``item`` into ``bucket``; return True if it was stored."""


class FIFOPolicy(InsertionPolicy):
    """Replace the oldest item when the bucket is full (always stores)."""

    name = "fifo"

    def insert(self, bucket, item: int) -> bool:
        if len(bucket) < bucket.capacity:
            bucket.append(item)
        else:
            bucket.replace(bucket.oldest_slot(), item)
        return True


class ReservoirPolicy(InsertionPolicy):
    """Vitter's reservoir sampling replacement.

    Each bucket tracks how many items it has *seen*; the ``n``-th arrival is
    kept with probability ``capacity / n`` and, if kept, overwrites a
    uniformly random slot.  The result is a uniform sample of everything ever
    hashed to the bucket, which is exactly what the adaptive-sampling view of
    LSH requires.
    """

    name = "reservoir"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def insert(self, bucket, item: int) -> bool:
        if len(bucket) < bucket.capacity:
            bucket.append(item)
            return True
        slot = int(self._rng.integers(0, bucket.seen + 1))
        if slot < bucket.capacity:
            bucket.replace(slot, item)
            return True
        bucket.count_rejection()
        return False


def make_insertion_policy(
    name: str, rng: np.random.Generator | None = None
) -> InsertionPolicy:
    """Build an insertion policy by name (``fifo`` or ``reservoir``)."""
    lowered = name.lower()
    if lowered == "fifo":
        return FIFOPolicy()
    if lowered == "reservoir":
        return ReservoirPolicy(rng=rng)
    raise ValueError(f"unknown insertion policy {name!r}")
