"""A single LSH hash table on flat array-backed storage.

One table owns one *meta* hash function — the concatenation of ``K``
elementary codes — and maps the resulting ``int64`` fingerprint to a row of
a shared fixed-width slot matrix (:class:`~repro.lsh.bucket.FlatBuckets`).
The fingerprint→row directory is a pair of parallel sorted arrays probed
with ``searchsorted``, so whole batches of fingerprints resolve to bucket
rows in one vectorised lookup and whole batches of items are inserted or
removed with array ops (:meth:`insert_many` / :meth:`remove_many`) instead
of per-item dictionary and list mutations.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.bucket import FlatBuckets
from repro.lsh.policies import InsertionPolicy
from repro.types import IntArray

__all__ = ["HashTable"]

# splitmix64-flavoured combine constant for chunked fingerprint mixing.
_MIX_CONSTANT = np.uint64(0x9E3779B97F4A7C15)


def _radix_chunks(k: int, cardinality: int) -> list[tuple[slice, np.ndarray]]:
    """Split ``K`` code positions into chunks whose packing fits int64.

    Each chunk is ``(column_slice, radix_weights)``; a single chunk means the
    whole tuple packs exactly into one int64 (the common case).  Wider
    (cardinality, K) combinations pack chunk by chunk and mix the chunk
    values into one 64-bit fingerprint.
    """
    digits_per_chunk = max(1, int(np.floor(62.0 / np.log2(cardinality))))
    chunks: list[tuple[slice, np.ndarray]] = []
    for start in range(0, k, digits_per_chunk):
        width = min(digits_per_chunk, k - start)
        radix = cardinality ** np.arange(width - 1, -1, -1, dtype=np.int64)
        chunks.append((slice(start, start + width), radix))
    return chunks


class HashTable:
    """Flat-layout hash table from meta-hash fingerprints to bounded buckets.

    Parameters
    ----------
    code_cardinality:
        Number of distinct values an elementary code can take; used to pack
        the ``K`` codes into a single integer fingerprint.  When
        ``code_cardinality ** k`` fits in an int64 the packing is exact
        (injective over code tuples); wider combinations fall back to a
        chunked pack-and-mix that stays batched but may collide — harmless
        for LSH, where the fingerprint is itself a hash.
    bucket_size:
        Maximum ids per bucket (the slot-matrix row width).
    policy:
        Replacement policy applied when a bucket is full.
    """

    def __init__(
        self,
        k: int,
        code_cardinality: int,
        bucket_size: int,
        policy: InsertionPolicy,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if code_cardinality < 2:
            raise ValueError("code_cardinality must be at least 2")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.k = int(k)
        self.code_cardinality = int(code_cardinality)
        self.bucket_size = int(bucket_size)
        self.policy = policy
        self._chunks = _radix_chunks(self.k, self.code_cardinality)
        self._flat = FlatBuckets(self.bucket_size)
        # Fingerprint -> bucket-row directory as parallel sorted arrays.
        self._keys = np.zeros(0, dtype=np.int64)
        self._key_rows = np.zeros(0, dtype=np.int64)

    @property
    def exact_fingerprints(self) -> bool:
        """True when the code tuple packs injectively into one int64."""
        return len(self._chunks) == 1

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _validate_codes(self, codes: np.ndarray) -> None:
        if codes.size and (codes.min() < 0 or codes.max() >= self.code_cardinality):
            raise ValueError("code value out of range for code_cardinality")

    def fingerprint(self, codes: IntArray) -> int:
        """Pack ``K`` elementary codes into one int64 fingerprint."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (self.k,):
            raise ValueError(f"expected {self.k} codes, got shape {codes.shape}")
        return int(self.fingerprint_many(codes[None, :])[0])

    def fingerprint_many(self, codes: IntArray) -> IntArray:
        """Fingerprints for ``(n, K)`` codes as an ``int64`` array.

        The batched counterpart of :meth:`fingerprint`: packing ``n`` code
        tuples costs one ``(n, chunk) @ (chunk,)`` product per radix chunk
        instead of ``n * K`` Python-level multiply-adds.  Over-wide radixes
        stay batched too — each chunk packs vectorised and the chunk values
        are mixed into one 64-bit word.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.k:
            raise ValueError(f"expected shape (n, {self.k}), got {codes.shape}")
        if codes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        self._validate_codes(codes)
        cols, radix = self._chunks[0][0], self._chunks[0][1]
        if len(self._chunks) == 1:
            return codes @ radix
        mixed = (codes[:, cols] @ radix).astype(np.uint64)
        for cols, radix in self._chunks[1:]:
            packed = (codes[:, cols] @ radix).astype(np.uint64)
            combined = (
                packed
                + _MIX_CONSTANT
                + (mixed << np.uint64(6))
                + (mixed >> np.uint64(2))
            )
            mixed = mixed ^ combined
        return mixed.view(np.int64)

    # ------------------------------------------------------------------
    # Fingerprint -> bucket-row directory
    # ------------------------------------------------------------------
    def _rows_of(self, keys: IntArray) -> IntArray:
        """Bucket rows for a batch of fingerprints (``-1`` where unmapped)."""
        keys = np.asarray(keys, dtype=np.int64)
        if self._keys.size == 0:
            return np.full(keys.shape, -1, dtype=np.int64)
        pos = np.minimum(np.searchsorted(self._keys, keys), self._keys.size - 1)
        return np.where(self._keys[pos] == keys, self._key_rows[pos], -1)

    def _row_of_scalar(self, key: int) -> int:
        """Bucket row for one fingerprint (``-1`` when unmapped)."""
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and self._keys[pos] == key:
            return int(self._key_rows[pos])
        return -1

    def _rows_for_insert(self, keys: IntArray) -> IntArray:
        """Like :meth:`_rows_of` but allocates buckets for unmapped keys."""
        rows = self._rows_of(keys)
        missing = rows < 0
        if np.any(missing):
            new_keys = np.unique(keys[missing])
            new_rows = self._flat.alloc(new_keys.size)
            merged_keys = np.concatenate([self._keys, new_keys])
            merged_rows = np.concatenate([self._key_rows, new_rows])
            order = np.argsort(merged_keys, kind="stable")
            self._keys = merged_keys[order]
            self._key_rows = merged_rows[order]
            rows = self._rows_of(keys)
        return rows

    def _row_for_insert_scalar(self, key: int) -> int:
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and self._keys[pos] == key:
            return int(self._key_rows[pos])
        row = int(self._flat.alloc(1)[0])
        self._keys = np.insert(self._keys, pos, key)
        self._key_rows = np.insert(self._key_rows, pos, row)
        return row

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, codes: IntArray, item: int) -> bool:
        """Insert ``item`` under the bucket addressed by ``codes``."""
        return self.insert_fingerprint(self.fingerprint(codes), item)

    def insert_fingerprint(self, key: int, item: int) -> bool:
        """Insert ``item`` under a precomputed fingerprint key."""
        if item < 0:
            raise ValueError("items must be non-negative (−1 is the slot sentinel)")
        row = self._row_for_insert_scalar(int(key))
        return self.policy.insert_flat(self._flat, row, int(item))

    def insert_many(self, keys: IntArray, items: IntArray) -> int:
        """Insert a whole batch of ``(fingerprint, item)`` pairs at once.

        Produces the same bucket contents as calling
        :meth:`insert_fingerprint` pair by pair in order (reservoir draws are
        requested from the generator in one vectorised call rather than one
        scalar draw per overflowing arrival).  Returns the number stored.
        """
        keys = np.asarray(keys, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if keys.shape != items.shape or keys.ndim != 1:
            raise ValueError("keys and items must be 1-D arrays of equal length")
        if keys.size == 0:
            return 0
        if items.min() < 0:
            raise ValueError("items must be non-negative (−1 is the slot sentinel)")
        rows = self._rows_for_insert(keys)
        return self.policy.insert_many_flat(self._flat, rows, items)

    def remove(self, codes: IntArray, item: int) -> bool:
        """Remove ``item`` from the bucket addressed by ``codes`` if present."""
        return self.remove_fingerprint(self.fingerprint(codes), item)

    def remove_fingerprint(self, key: int, item: int) -> bool:
        """Remove one occurrence of ``item`` under a precomputed fingerprint."""
        row = self._row_of_scalar(int(key))
        if row < 0:
            return False
        size = int(self._flat.sizes[row])
        bucket = self._flat.slots[row, :size]
        hits = np.flatnonzero(bucket == item)
        if hits.size == 0:
            return False
        slot = int(hits[0])
        self._flat.slots[row, slot : size - 1] = self._flat.slots[row, slot + 1 : size]
        self._flat.slots[row, size - 1] = -1
        self._flat.sizes[row] = size - 1
        if size == 1:
            self._release_rows(np.asarray([row], dtype=np.int64))
        return True

    def _release_rows(self, rows: IntArray) -> None:
        """Reclaim emptied bucket rows and drop their directory entries.

        Keeps table memory proportional to the *live* bucket count (the
        object-per-bucket layout deleted empty buckets; the flat layout
        recycles their slot rows through the allocator's free list).
        """
        self._flat.release(rows)
        keep = ~np.isin(self._key_rows, rows)
        self._keys = self._keys[keep]
        self._key_rows = self._key_rows[keep]

    def remove_many(self, keys: IntArray, items: IntArray) -> int:
        """Remove a batch of ``(fingerprint, item)`` pairs in one sweep.

        Every occurrence of each pair is removed; buckets are compacted in
        place preserving the order of the surviving slots.  Pairs whose
        bucket or item is absent are ignored.  Returns the number removed.
        """
        keys = np.asarray(keys, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if keys.shape != items.shape or keys.ndim != 1:
            raise ValueError("keys and items must be 1-D arrays of equal length")
        if keys.size == 0:
            return 0
        rows = self._rows_of(keys)
        present = rows >= 0
        if not np.any(present):
            return 0
        rows = rows[present]
        items = items[present]
        affected = np.unique(rows)
        block = self._flat.slots[affected]
        capacity = self._flat.capacity

        # Encode (bucket, item) pairs as single int64 keys so membership of
        # every slot in the removal set is one np.isin sweep.
        base = int(max(int(items.max()), int(block.max()), 0)) + 2
        if (int(affected.max()) + 1) * base < 2**62:
            row_index = np.searchsorted(affected, rows)
            removal_keys = row_index * base + items
            slot_keys = (
                np.arange(affected.size, dtype=np.int64)[:, None] * base + block
            )
            hit = np.isin(slot_keys, removal_keys) & (block >= 0)
        else:  # pragma: no cover - astronomically large ids
            hit = np.zeros_like(block, dtype=bool)
            for row_index, row in enumerate(affected):
                to_remove = items[rows == row]
                hit[row_index] = np.isin(block[row_index], to_remove)

        sizes = self._flat.sizes[affected]
        keep = ~hit & (np.arange(capacity)[None, :] < sizes[:, None])
        removed = int(hit.sum())
        if removed == 0:
            return 0
        order = np.argsort(~keep, axis=1, kind="stable")
        compacted = np.take_along_axis(block, order, axis=1)
        new_sizes = keep.sum(axis=1)
        compacted[np.arange(capacity)[None, :] >= new_sizes[:, None]] = -1
        self._flat.slots[affected] = compacted
        self._flat.sizes[affected] = new_sizes
        emptied = affected[(new_sizes == 0) & (sizes > 0)]
        if emptied.size:
            self._release_rows(emptied)
        return removed

    def clear(self) -> None:
        """Drop every bucket."""
        self._flat.clear()
        self._keys = np.zeros(0, dtype=np.int64)
        self._key_rows = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, codes: IntArray) -> np.ndarray:
        """Return the ids stored in the bucket addressed by ``codes``."""
        return self.query_fingerprint(self.fingerprint(codes))

    def query_fingerprint(self, key: int) -> np.ndarray:
        """Return the ids stored in the bucket under a precomputed fingerprint."""
        row = self._row_of_scalar(int(key))
        if row < 0:
            return np.zeros(0, dtype=np.int64)
        return self._flat.contents(row)

    def query_many(self, keys: IntArray) -> tuple[IntArray, IntArray]:
        """Bucket contents for a batch of fingerprints in one gather.

        Returns ``(candidates, sizes)`` where ``candidates`` is an
        ``(n, bucket_size)`` int64 matrix padded with ``-1`` beyond each
        row's ``sizes`` entry (missing buckets are all ``-1``).
        """
        keys = np.asarray(keys, dtype=np.int64)
        rows = self._rows_of(keys)
        present = rows >= 0
        if self._flat.num_rows == 0 or not np.any(present):
            return (
                np.full((keys.size, self.bucket_size), -1, dtype=np.int64),
                np.zeros(keys.size, dtype=np.int64),
            )
        safe = np.where(present, rows, 0)
        candidates = self._flat.slots[safe]
        sizes = np.where(present, self._flat.sizes[safe], 0)
        if not np.all(present):
            candidates[~present] = -1
        return candidates, sizes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets currently in the table."""
        return int(np.count_nonzero(self._flat.sizes[: self._flat.num_rows]))

    @property
    def num_items(self) -> int:
        """Total number of ids stored across all buckets."""
        return int(self._flat.sizes[: self._flat.num_rows].sum())

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all non-empty buckets (for load-balance diagnostics)."""
        sizes = self._flat.sizes[: self._flat.num_rows]
        return sizes[sizes > 0].copy()

    def load_factor(self) -> float:
        """Mean bucket occupancy relative to the bucket size limit."""
        sizes = self.bucket_sizes()
        if sizes.size == 0:
            return 0.0
        return float(sizes.mean() / self.bucket_size)
