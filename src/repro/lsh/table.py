"""A single LSH hash table.

One table owns one *meta* hash function — the concatenation of ``K``
elementary codes — and a dictionary from the resulting fingerprint to a
fixed-size :class:`~repro.lsh.bucket.Bucket` of neuron ids.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.bucket import Bucket
from repro.lsh.policies import InsertionPolicy
from repro.types import IntArray

__all__ = ["HashTable"]


class HashTable:
    """Dictionary from meta-hash fingerprints to bounded buckets.

    Parameters
    ----------
    code_cardinality:
        Number of distinct values an elementary code can take; used to pack
        the ``K`` codes into a single integer fingerprint without collisions
        between distinct tuples.
    bucket_size:
        Maximum ids per bucket.
    policy:
        Replacement policy applied when a bucket is full.
    """

    def __init__(
        self,
        k: int,
        code_cardinality: int,
        bucket_size: int,
        policy: InsertionPolicy,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if code_cardinality < 2:
            raise ValueError("code_cardinality must be at least 2")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.k = int(k)
        self.code_cardinality = int(code_cardinality)
        self.bucket_size = int(bucket_size)
        self.policy = policy
        self._buckets: dict[int, Bucket] = {}
        # Mixed-radix weights for the vectorised fingerprint path.  The packed
        # value can exceed int64 for exotic (cardinality, K) combinations —
        # the scalar path then computes with Python's arbitrary precision and
        # the vectorised path falls back to it.
        self._radix_fits_int64 = self.code_cardinality**self.k < 2**63
        if self._radix_fits_int64:
            self._radix = self.code_cardinality ** np.arange(
                self.k - 1, -1, -1, dtype=np.int64
            )
        else:
            self._radix = None

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint(self, codes: IntArray) -> int:
        """Pack ``K`` elementary codes into one integer (mixed-radix)."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (self.k,):
            raise ValueError(f"expected {self.k} codes, got shape {codes.shape}")
        if codes.min() < 0 or codes.max() >= self.code_cardinality:
            raise ValueError("code value out of range for code_cardinality")
        fingerprint = 0
        for code in codes:
            fingerprint = fingerprint * self.code_cardinality + int(code)
        return fingerprint

    def fingerprint_many(self, codes: IntArray) -> list[int]:
        """Fingerprints for ``(n, K)`` codes, computed in one vector op.

        The batched counterpart of :meth:`fingerprint` used by the kernels
        subsystem: packing ``n`` code tuples costs one ``(n, K) @ (K,)``
        product instead of ``n * K`` Python-level multiply-adds.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.k:
            raise ValueError(f"expected shape (n, {self.k}), got {codes.shape}")
        if codes.size == 0:
            return []
        if codes.min() < 0 or codes.max() >= self.code_cardinality:
            raise ValueError("code value out of range for code_cardinality")
        if self._radix_fits_int64:
            return (codes @ self._radix).tolist()
        return [self.fingerprint(row) for row in codes]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, codes: IntArray, item: int) -> bool:
        """Insert ``item`` under the bucket addressed by ``codes``."""
        return self.insert_fingerprint(self.fingerprint(codes), item)

    def insert_fingerprint(self, key: int, item: int) -> bool:
        """Insert ``item`` under a precomputed fingerprint key."""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = Bucket(self.bucket_size)
            self._buckets[key] = bucket
        return self.policy.insert(bucket, item)

    def remove(self, codes: IntArray, item: int) -> bool:
        """Remove ``item`` from the bucket addressed by ``codes`` if present."""
        return self.remove_fingerprint(self.fingerprint(codes), item)

    def remove_fingerprint(self, key: int, item: int) -> bool:
        """Remove ``item`` from the bucket under a precomputed fingerprint."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return False
        removed = bucket.remove(item)
        if removed and len(bucket) == 0:
            del self._buckets[key]
        return removed

    def clear(self) -> None:
        """Drop every bucket."""
        self._buckets.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, codes: IntArray) -> np.ndarray:
        """Return the ids stored in the bucket addressed by ``codes``."""
        return self.query_fingerprint(self.fingerprint(codes))

    def query_fingerprint(self, key: int) -> np.ndarray:
        """Return the ids stored in the bucket under a precomputed fingerprint."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return np.zeros(0, dtype=np.int64)
        return bucket.items

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets currently allocated."""
        return len(self._buckets)

    @property
    def num_items(self) -> int:
        """Total number of ids stored across all buckets."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all non-empty buckets (for load-balance diagnostics)."""
        return np.asarray([len(b) for b in self._buckets.values()], dtype=np.int64)

    def load_factor(self) -> float:
        """Mean bucket occupancy relative to the bucket size limit."""
        if not self._buckets:
            return 0.0
        return float(self.bucket_sizes().mean() / self.bucket_size)
