"""LSH hash tables: fixed-size buckets, insertion policies, and the
multi-table index that SLIDE layers query for active neurons."""

from repro.lsh.bucket import Bucket, FlatBuckets
from repro.lsh.policies import FIFOPolicy, ReservoirPolicy, make_insertion_policy
from repro.lsh.table import HashTable
from repro.lsh.index import BatchQueryResult, LSHIndex, QueryResult
from repro.lsh.scheduler import ExponentialDecaySchedule, FixedPeriodSchedule

__all__ = [
    "Bucket",
    "FlatBuckets",
    "BatchQueryResult",
    "FIFOPolicy",
    "ReservoirPolicy",
    "make_insertion_policy",
    "HashTable",
    "LSHIndex",
    "QueryResult",
    "ExponentialDecaySchedule",
    "FixedPeriodSchedule",
]
