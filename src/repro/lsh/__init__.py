"""LSH hash tables: fixed-size buckets, insertion policies, and the
multi-table index that SLIDE layers query for active neurons."""

from repro.lsh.bucket import Bucket
from repro.lsh.policies import FIFOPolicy, ReservoirPolicy, make_insertion_policy
from repro.lsh.table import HashTable
from repro.lsh.index import LSHIndex, QueryResult
from repro.lsh.scheduler import ExponentialDecaySchedule, FixedPeriodSchedule

__all__ = [
    "Bucket",
    "FIFOPolicy",
    "ReservoirPolicy",
    "make_insertion_policy",
    "HashTable",
    "LSHIndex",
    "QueryResult",
    "ExponentialDecaySchedule",
    "FixedPeriodSchedule",
]
