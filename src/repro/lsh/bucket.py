"""A fixed-capacity bucket of neuron ids inside one hash table.

The paper limits every bucket to a fixed size: "Such a limit helps with the
memory usage and also balances the load on threads during parallel
aggregation of neurons" (Section 3.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bucket"]


class Bucket:
    """Fixed-size container of integer ids with slot-replacement support.

    The bucket keeps insertion-order bookkeeping (``oldest_slot``) for the
    FIFO policy and a ``seen`` counter for reservoir sampling.
    """

    __slots__ = ("capacity", "_items", "_arrival", "_next_arrival", "seen", "rejections")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._items: list[int] = []
        self._arrival: list[int] = []
        self._next_arrival = 0
        # Number of insertion attempts ever made against this bucket.
        self.seen = 0
        # Number of attempts rejected by the policy (reservoir only).
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    @property
    def items(self) -> np.ndarray:
        """Current contents as an ``int64`` array (copy)."""
        return np.asarray(self._items, dtype=np.int64)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def append(self, item: int) -> None:
        """Add to a non-full bucket (raises if full)."""
        if self.is_full:
            raise ValueError("bucket is full; use a replacement policy")
        self._items.append(int(item))
        self._arrival.append(self._next_arrival)
        self._next_arrival += 1
        self.seen += 1

    def replace(self, slot: int, item: int) -> None:
        """Overwrite ``slot`` with ``item`` (counts as an arrival)."""
        if not 0 <= slot < len(self._items):
            raise IndexError(f"slot {slot} out of range")
        self._items[slot] = int(item)
        self._arrival[slot] = self._next_arrival
        self._next_arrival += 1
        self.seen += 1

    def count_rejection(self) -> None:
        """Record an arrival that the policy decided not to store."""
        self.seen += 1
        self.rejections += 1

    def oldest_slot(self) -> int:
        """Slot index of the item that arrived earliest (for FIFO)."""
        if not self._items:
            raise ValueError("bucket is empty")
        return int(np.argmin(self._arrival))

    def remove(self, item: int) -> bool:
        """Remove one occurrence of ``item`` if present; return success."""
        try:
            slot = self._items.index(int(item))
        except ValueError:
            return False
        self._items.pop(slot)
        self._arrival.pop(slot)
        return True

    def clear(self) -> None:
        """Drop all contents and reset the arrival/seen counters."""
        self._items.clear()
        self._arrival.clear()
        self._next_arrival = 0
        self.seen = 0
        self.rejections = 0
