"""Bucket storage for LSH hash tables.

The paper limits every bucket to a fixed size: "Such a limit helps with the
memory usage and also balances the load on threads during parallel
aggregation of neurons" (Section 3.2).

Two implementations live here:

* :class:`FlatBuckets` — the production layout.  All buckets of one table
  share a single fixed-width ``int64`` slot matrix (one row per bucket, the
  paper's fixed bucket size as the row width) plus parallel ``sizes`` /
  ``seen`` / ``rejections`` counter arrays, so whole-batch insertions and
  removals are plain array ops instead of per-item object mutations.
* :class:`Bucket` — the original object-per-bucket container, kept as the
  reference for the sequential insertion-policy semantics (the policy unit
  tests pin FIFO/reservoir behaviour against it).
"""

from __future__ import annotations

import numpy as np

from repro.types import IntArray

__all__ = ["Bucket", "FlatBuckets"]

_EMPTY_SLOT = -1


class FlatBuckets:
    """All buckets of one table as a flat slot matrix plus counter arrays.

    Row ``r`` holds one bucket: ``slots[r, :sizes[r]]`` are the stored ids
    (``-1`` marks an empty slot), ``seen[r]`` counts every insertion attempt
    ever made against the bucket and ``rejections[r]`` the attempts a policy
    declined to store (reservoir only).  FIFO buckets keep their slots in
    arrival order (oldest first), which is what makes batched FIFO eviction
    a single keep-the-newest-``capacity`` gather.

    Stored ids must be non-negative — ``-1`` is reserved as the empty-slot
    sentinel so batched query gathers can mask missing buckets for free.
    """

    __slots__ = ("capacity", "slots", "sizes", "seen", "rejections", "num_rows", "_free")

    def __init__(self, capacity: int, initial_rows: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        rows = max(int(initial_rows), 0)
        self.slots = np.full((rows, self.capacity), _EMPTY_SLOT, dtype=np.int64)
        self.sizes = np.zeros(rows, dtype=np.int64)
        self.seen = np.zeros(rows, dtype=np.int64)
        self.rejections = np.zeros(rows, dtype=np.int64)
        self.num_rows = 0
        # Rows released by emptied buckets, reused before the matrix grows —
        # keeps table memory tracking the *live* bucket count.
        self._free: list[int] = []

    def alloc(self, count: int) -> IntArray:
        """Allocate ``count`` empty bucket rows (reusing released rows)."""
        if count <= 0:
            return np.zeros(0, dtype=np.int64)
        reused = []
        while self._free and len(reused) < count:
            reused.append(self._free.pop())
        fresh_count = count - len(reused)
        needed = self.num_rows + fresh_count
        if needed > self.slots.shape[0]:
            grown = max(needed, 2 * self.slots.shape[0], 8)
            new_slots = np.full((grown, self.capacity), _EMPTY_SLOT, dtype=np.int64)
            new_slots[: self.num_rows] = self.slots[: self.num_rows]
            self.slots = new_slots
            for name in ("sizes", "seen", "rejections"):
                old = getattr(self, name)
                new = np.zeros(grown, dtype=np.int64)
                new[: self.num_rows] = old[: self.num_rows]
                setattr(self, name, new)
        fresh = np.arange(self.num_rows, needed, dtype=np.int64)
        self.num_rows = needed
        rows = np.concatenate([np.asarray(reused, dtype=np.int64), fresh])
        # Rows may have been used before (clear() or release()); re-blank.
        self.slots[rows] = _EMPTY_SLOT
        self.sizes[rows] = 0
        self.seen[rows] = 0
        self.rejections[rows] = 0
        return rows

    def release(self, rows: IntArray) -> None:
        """Return emptied bucket rows to the allocator for reuse."""
        self._free.extend(int(row) for row in np.asarray(rows, dtype=np.int64))

    def clear(self) -> None:
        """Drop every bucket (allocation is retained for reuse)."""
        self.num_rows = 0
        self._free.clear()

    def contents(self, row: int) -> IntArray:
        """Copy of one bucket's stored ids."""
        return self.slots[row, : int(self.sizes[row])].copy()


class Bucket:
    """Fixed-size container of integer ids with slot-replacement support.

    The bucket keeps insertion-order bookkeeping (``oldest_slot``) for the
    FIFO policy and a ``seen`` counter for reservoir sampling.
    """

    __slots__ = ("capacity", "_items", "_arrival", "_next_arrival", "seen", "rejections")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._items: list[int] = []
        self._arrival: list[int] = []
        self._next_arrival = 0
        # Number of insertion attempts ever made against this bucket.
        self.seen = 0
        # Number of attempts rejected by the policy (reservoir only).
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    @property
    def items(self) -> np.ndarray:
        """Current contents as an ``int64`` array (copy)."""
        return np.asarray(self._items, dtype=np.int64)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def append(self, item: int) -> None:
        """Add to a non-full bucket (raises if full)."""
        if self.is_full:
            raise ValueError("bucket is full; use a replacement policy")
        self._items.append(int(item))
        self._arrival.append(self._next_arrival)
        self._next_arrival += 1
        self.seen += 1

    def replace(self, slot: int, item: int) -> None:
        """Overwrite ``slot`` with ``item`` (counts as an arrival)."""
        if not 0 <= slot < len(self._items):
            raise IndexError(f"slot {slot} out of range")
        self._items[slot] = int(item)
        self._arrival[slot] = self._next_arrival
        self._next_arrival += 1
        self.seen += 1

    def count_rejection(self) -> None:
        """Record an arrival that the policy decided not to store."""
        self.seen += 1
        self.rejections += 1

    def oldest_slot(self) -> int:
        """Slot index of the item that arrived earliest (for FIFO)."""
        if not self._items:
            raise ValueError("bucket is empty")
        return int(np.argmin(self._arrival))

    def remove(self, item: int) -> bool:
        """Remove one occurrence of ``item`` if present; return success."""
        try:
            slot = self._items.index(int(item))
        except ValueError:
            return False
        self._items.pop(slot)
        self._arrival.pop(slot)
        return True

    def clear(self) -> None:
        """Drop all contents and reset the arrival/seen counters."""
        self._items.clear()
        self._arrival.clear()
        self._next_arrival = 0
        self.seen = 0
        self.rejections = 0
