"""Hash-table rebuild schedules (paper Section 4.2, heuristic 1).

Recomputing every neuron's hash codes after every gradient step would erase
SLIDE's advantage, so the paper rebuilds the tables on a schedule whose period
grows exponentially: the ``t``-th rebuild happens ``N0 * exp(lambda * (t-1))``
iterations after the previous one.  Early in training, when gradients are
large and neuron weights move quickly, rebuilds are frequent; near
convergence they become rare.
"""

from __future__ import annotations

import abc
import math

__all__ = ["RebuildSchedule", "ExponentialDecaySchedule", "FixedPeriodSchedule"]


class RebuildSchedule(abc.ABC):
    """Decides at which iterations the hash tables should be rebuilt."""

    @abc.abstractmethod
    def should_rebuild(self, iteration: int) -> bool:
        """Return True if a rebuild is due at ``iteration`` (0-based)."""

    @abc.abstractmethod
    def record_rebuild(self, iteration: int) -> None:
        """Notify the schedule that a rebuild happened at ``iteration``."""

    @abc.abstractmethod
    def next_rebuild_iteration(self) -> int:
        """Iteration at which the next rebuild is due."""

    def state_dict(self) -> dict[str, int]:
        """JSON-safe mutable state, for checkpoint/resume.

        A resumed run must rebuild at the same iterations the original
        would have, or the active sets — and therefore the whole loss
        trajectory — diverge from the point of the first mistimed rebuild.
        """
        return {
            "next": int(self.next_rebuild_iteration()),
            "rebuild_count": int(getattr(self, "_rebuild_count", 0)),
        }

    def load_state_dict(self, state: dict[str, int]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._next = int(state["next"])
        if hasattr(self, "_rebuild_count"):
            self._rebuild_count = int(state.get("rebuild_count", 0))


class FixedPeriodSchedule(RebuildSchedule):
    """Rebuild every ``period`` iterations (ablation baseline)."""

    def __init__(self, period: int) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = int(period)
        self._next = self.period

    def should_rebuild(self, iteration: int) -> bool:
        return iteration >= self._next

    def record_rebuild(self, iteration: int) -> None:
        self._next = iteration + self.period

    def next_rebuild_iteration(self) -> int:
        return self._next


class ExponentialDecaySchedule(RebuildSchedule):
    """The paper's exponentially decaying rebuild frequency.

    Parameters
    ----------
    initial_period:
        ``N0`` — iterations before the first rebuild.
    decay:
        ``lambda`` — the decay constant; 0 reduces to a fixed period.
    max_period:
        Upper bound on the gap between consecutive rebuilds.
    """

    def __init__(self, initial_period: int, decay: float = 0.1, max_period: int = 10_000) -> None:
        if initial_period <= 0:
            raise ValueError("initial_period must be positive")
        if decay < 0:
            raise ValueError("decay must be non-negative")
        if max_period < initial_period:
            raise ValueError("max_period must be >= initial_period")
        self.initial_period = int(initial_period)
        self.decay = float(decay)
        self.max_period = int(max_period)
        self._rebuild_count = 0
        self._next = self.initial_period

    def _capped_period(self, rebuild_count: int) -> float:
        """``min(N0 * exp(lambda * t), max_period)`` without overflowing.

        ``math.exp`` raises ``OverflowError`` once the exponent passes ~709;
        on long runs ``decay * rebuild_count`` sails past that even though the
        result is capped at ``max_period`` anyway, so the exponent is clamped
        at the point where the uncapped period already exceeds the cap.
        """
        exponent = self.decay * rebuild_count
        cap_exponent = math.log(max(self.max_period / self.initial_period, 1.0))
        if exponent >= cap_exponent:
            return float(self.max_period)
        return min(self.initial_period * math.exp(exponent), float(self.max_period))

    def current_period(self) -> int:
        """Gap that will follow the *next* rebuild."""
        return int(round(self._capped_period(self._rebuild_count)))

    def should_rebuild(self, iteration: int) -> bool:
        return iteration >= self._next

    def record_rebuild(self, iteration: int) -> None:
        self._rebuild_count += 1
        self._next = iteration + self.current_period()

    def next_rebuild_iteration(self) -> int:
        return self._next

    @property
    def rebuild_count(self) -> int:
        """Number of rebuilds recorded so far."""
        return self._rebuild_count

    def planned_iterations(self, num_rebuilds: int) -> list[int]:
        """The first ``num_rebuilds`` rebuild iterations implied by the schedule.

        Matches the paper's formula: the ``t``-th update happens at iteration
        ``sum_{i=0}^{t-1} N0 * exp(lambda * i)``.
        """
        if num_rebuilds < 0:
            raise ValueError("num_rebuilds must be non-negative")
        iterations = []
        total = 0.0
        for t in range(num_rebuilds):
            total += self._capped_period(t)
            iterations.append(int(round(total)))
        return iterations
