"""The per-layer LSH index: ``L`` hash tables over neuron weight vectors.

This is the data structure at the heart of SLIDE (Figure 2).  It supports:

* bulk construction from a weight matrix (one row per neuron);
* querying with a layer input, returning per-table candidate buckets that the
  sampling strategies (:mod:`repro.sampling`) turn into an active-neuron set;
* full rebuilds and *incremental* rebuilds of a subset of neurons after
  their weights change.

Storage is flat and contiguous: the index keeps one ``(n,)`` item array, one
``(n, L, K)`` code matrix and one ``(n, L)`` fingerprint matrix instead of
per-item dictionary entries.  ``build``/``restore_codes`` are pure array ops
(one vectorised hash sweep, one fingerprint pack and one batched table
insert per table), and ``update`` is a *code diff*: an item is moved between
buckets of table ``t`` only when its fingerprint in table ``t`` actually
changed, so an incremental rebuild costs O(changed entries), not O(dirty
items × L).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LSHConfig
from repro.hashing.base import LSHFamily, VectorLike
from repro.hashing.factory import make_hash_family
from repro.lsh.policies import make_insertion_policy
from repro.lsh.table import HashTable
from repro.types import FloatArray, IntArray
from repro.utils.rng import derive_rng

__all__ = ["LSHIndex", "QueryResult", "BatchQueryResult"]


@dataclass
class QueryResult:
    """Outcome of probing the ``L`` tables with one query vector.

    Attributes
    ----------
    buckets:
        One integer array of candidate neuron ids per table (length ``L``).
    codes:
        The ``(L, K)`` elementary hash codes of the query.
    """

    buckets: list[IntArray] = field(default_factory=list)
    codes: IntArray | None = None

    def union(self) -> IntArray:
        """Unique union of all candidate ids across the probed tables."""
        if not self.buckets:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(self.buckets))

    def frequencies(self) -> tuple[IntArray, IntArray]:
        """Candidate ids with the number of tables in which each appeared."""
        if not self.buckets:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        concatenated = np.concatenate(self.buckets)
        if concatenated.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        ids, counts = np.unique(concatenated, return_counts=True)
        return ids.astype(np.int64), counts.astype(np.int64)

    @property
    def total_candidates(self) -> int:
        """Number of (non-unique) candidates returned across tables."""
        return int(sum(bucket.size for bucket in self.buckets))


@dataclass
class BatchQueryResult:
    """Candidate sets for a whole query batch, as flat arrays.

    ``candidates[b, t]`` holds the bucket contents table ``t`` returned for
    query row ``b``, padded with ``-1`` beyond ``sizes[b, t]`` — no per-query
    Python objects are materialised.  :meth:`result` builds a per-row
    :class:`QueryResult` view on demand for consumers that want the
    per-table bucket list (e.g. the sampling strategies).
    """

    codes: IntArray  # (batch, L, K)
    candidates: IntArray  # (batch, L, bucket_size), -1 padded
    sizes: IntArray  # (batch, L)

    @property
    def batch_size(self) -> int:
        return int(self.candidates.shape[0])

    @property
    def num_tables(self) -> int:
        return int(self.candidates.shape[1])

    def result(self, row: int) -> QueryResult:
        """Per-row :class:`QueryResult` (bucket arrays are views)."""
        buckets = [
            self.candidates[row, t, : self.sizes[row, t]]
            for t in range(self.num_tables)
        ]
        return QueryResult(buckets=buckets, codes=self.codes[row])

    def union(self, row: int) -> IntArray:
        """Unique union of one row's candidates across all tables."""
        values = self.candidates[row]
        values = values[values >= 0]
        return np.unique(values)

    def frequencies(self, row: int) -> tuple[IntArray, IntArray]:
        """One row's candidate ids with their cross-table collision counts."""
        values = self.candidates[row]
        values = values[values >= 0]
        if values.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        ids, counts = np.unique(values, return_counts=True)
        return ids.astype(np.int64), counts.astype(np.int64)


class LSHIndex:
    """``L`` hash tables built over the rows of a weight matrix."""

    def __init__(
        self,
        input_dim: int,
        config: LSHConfig,
        seed: int = 0,
    ) -> None:
        self.input_dim = int(input_dim)
        self.config = config
        self.seed = int(seed)
        self._rng = derive_rng(seed, stream=7)
        self.hash_family: LSHFamily = make_hash_family(input_dim, config, seed=seed)
        self._tables = [
            HashTable(
                k=config.k,
                code_cardinality=self.hash_family.code_cardinality,
                bucket_size=config.bucket_size,
                policy=make_insertion_policy(config.insertion_policy, rng=self._rng),
            )
            for _ in range(config.l)
        ]
        # Contiguous per-item state: row r of every matrix describes the item
        # stored in self._items[r].  The fingerprint matrix is what makes
        # update() a code diff — only rows whose fingerprint changed move.
        self._items = np.zeros(0, dtype=np.int64)
        self._codes = np.zeros((0, config.l, config.k), dtype=np.int64)
        self._fps = np.zeros((0, config.l), dtype=np.int64)
        self._row_of: dict[int, int] = {}
        # Counters used by the cost model and diagnostics.
        self.num_insertions = 0
        self.num_queries = 0
        # Incremental-rebuild accounting: items passed to update() and the
        # (item, table) bucket moves actually applied.
        self.num_update_items = 0
        self.num_moved_entries = 0

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    @property
    def l(self) -> int:
        return self.config.l

    @property
    def k(self) -> int:
        return self.config.k

    @property
    def tables(self) -> list[HashTable]:
        return self._tables

    @property
    def num_items(self) -> int:
        """Number of distinct items currently indexed."""
        return int(self._items.size)

    def item_codes(self, item: int) -> IntArray:
        """Last-known ``(L, K)`` codes of one indexed item (copy)."""
        row = self._row_of.get(int(item))
        if row is None:
            raise KeyError(f"item {item} is not indexed")
        return self._codes[row].copy()

    def _fingerprint_matrix(self, all_codes: IntArray) -> IntArray:
        """Per-item ``(n, L)`` bucket fingerprints for ``(n, L, K)`` codes.

        One vectorised packing per table replaces the per-item, per-table
        Python loop; this is what makes bulk rebuilds of thousands of
        neurons cheap.
        """
        n = all_codes.shape[0]
        if n == 0:
            return np.zeros((0, self.l), dtype=np.int64)
        columns = [
            table.fingerprint_many(all_codes[:, table_idx, :])
            for table_idx, table in enumerate(self._tables)
        ]
        return np.stack(columns, axis=1)

    def insert(self, item: int, vector: VectorLike) -> None:
        """Hash ``vector`` and store ``item`` in every table."""
        codes = self.hash_family.hash_vector(vector)
        self._apply_codes(np.asarray([int(item)], dtype=np.int64), codes[None])

    def _set_contents(
        self, item_ids: IntArray, codes: IntArray, fps: IntArray
    ) -> None:
        """Replace the index contents wholesale (tables already cleared)."""
        for table_idx, table in enumerate(self._tables):
            table.insert_many(fps[:, table_idx], item_ids)
        self._items = item_ids.copy()
        self._codes = codes.astype(np.int64, copy=True)
        self._fps = fps
        self._row_of = {int(item): row for row, item in enumerate(item_ids)}
        self.num_insertions += int(item_ids.size)

    def _apply_codes(self, item_ids: IntArray, codes: IntArray) -> None:
        """Index ``item_ids`` under fresh ``(d, L, K)`` codes.

        Already-indexed items are *moved*: for each table, only the entries
        whose fingerprint differs from the stored one are removed from their
        old bucket and inserted into the new one (the code diff).  Unknown
        items are appended.
        """
        fps = self._fingerprint_matrix(codes)
        rows = np.fromiter(
            (self._row_of.get(int(item), -1) for item in item_ids),
            dtype=np.int64,
            count=item_ids.size,
        )
        known = rows >= 0
        if np.any(known):
            known_rows = rows[known]
            known_ids = item_ids[known]
            old_fps = self._fps[known_rows]
            new_fps = fps[known]
            changed = old_fps != new_fps
            for table_idx, table in enumerate(self._tables):
                moved = changed[:, table_idx]
                if np.any(moved):
                    table.remove_many(old_fps[moved, table_idx], known_ids[moved])
                    table.insert_many(new_fps[moved, table_idx], known_ids[moved])
            self._codes[known_rows] = codes[known]
            self._fps[known_rows] = new_fps
            self.num_moved_entries += int(changed.sum())
        if not np.all(known):
            fresh_ids = item_ids[~known]
            fresh_fps = fps[~known]
            base = self._items.size
            self._items = np.concatenate([self._items, fresh_ids])
            self._codes = np.concatenate(
                [self._codes, codes[~known].astype(np.int64)], axis=0
            )
            self._fps = np.concatenate([self._fps, fresh_fps], axis=0)
            for offset, item in enumerate(fresh_ids):
                self._row_of[int(item)] = base + offset
            for table_idx, table in enumerate(self._tables):
                table.insert_many(fresh_fps[:, table_idx], fresh_ids)
        self.num_insertions += int(item_ids.size)

    def build(self, weights: FloatArray, item_ids: IntArray | None = None) -> None:
        """(Re)build the index from scratch over the rows of ``weights``."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != self.input_dim:
            raise ValueError("weights must have shape (n_items, input_dim)")
        if item_ids is None:
            item_ids = np.arange(weights.shape[0], dtype=np.int64)
        else:
            item_ids = np.asarray(item_ids, dtype=np.int64)
            if item_ids.shape[0] != weights.shape[0]:
                raise ValueError("item_ids must align with weights rows")
            if np.unique(item_ids).size != item_ids.size:
                raise ValueError("item_ids must be unique")
        self.clear()
        all_codes = self.hash_family.hash_matrix(weights)
        self._set_contents(item_ids, all_codes, self._fingerprint_matrix(all_codes))

    def update(self, item_ids: IntArray, weights: FloatArray) -> None:
        """Re-hash only the given items (incremental rebuild after updates).

        The new codes are compared against the stored fingerprint matrix and
        only entries whose bucket actually changed are moved, so the cost
        scales with the number of *changed* fingerprints rather than the
        size of the dirty set.  Duplicate ids keep their last occurrence.
        """
        item_ids = np.asarray(item_ids, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != item_ids.shape[0]:
            raise ValueError("weights rows must align with item_ids")
        if item_ids.size and np.unique(item_ids).size != item_ids.size:
            reversed_ids = item_ids[::-1]
            _, first_in_reversed = np.unique(reversed_ids, return_index=True)
            keep = np.sort(item_ids.size - 1 - first_in_reversed)
            item_ids = item_ids[keep]
            weights = weights[keep]
        codes = self.hash_family.hash_matrix(weights)
        self._apply_codes(item_ids, codes)
        self.num_update_items += int(item_ids.size)

    def snapshot_codes(self) -> tuple[IntArray, IntArray]:
        """The indexed items and their codes, in insertion order.

        Returns ``(items, codes)`` with shapes ``(n,)`` and ``(n, L, K)`` —
        everything :meth:`restore_codes` needs to rebuild the tables without
        re-hashing (the serialisation surface used by checkpoints).
        """
        return self._items.copy(), self._codes.copy()

    def restore_codes(self, items: IntArray, codes: IntArray) -> None:
        """Rebuild the tables from a :meth:`snapshot_codes` snapshot.

        Replaying stored codes reproduces bucket membership exactly for any
        bucket that never overflowed; the eviction order of overflowed
        buckets is not preserved.
        """
        items = np.asarray(items, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (items.shape[0], self.l, self.k):
            raise ValueError(
                f"codes must have shape ({items.shape[0]}, {self.l}, {self.k})"
            )
        if np.unique(items).size != items.size:
            raise ValueError("snapshot items must be unique")
        self.clear()
        self._set_contents(items, codes, self._fingerprint_matrix(codes))

    def remove(self, item: int) -> bool:
        """Remove ``item`` from every table (if it was indexed)."""
        row = self._row_of.pop(int(item), None)
        if row is None:
            return False
        fps = self._fps[row]
        for table_idx, table in enumerate(self._tables):
            table.remove_fingerprint(int(fps[table_idx]), item)
        last = self._items.size - 1
        if row != last:
            moved_item = int(self._items[last])
            self._items[row] = self._items[last]
            self._codes[row] = self._codes[last]
            self._fps[row] = self._fps[last]
            self._row_of[moved_item] = row
        self._items = self._items[:last]
        self._codes = self._codes[:last]
        self._fps = self._fps[:last]
        return True

    def clear(self) -> None:
        """Drop every bucket in every table."""
        for table in self._tables:
            table.clear()
        self._items = np.zeros(0, dtype=np.int64)
        self._codes = np.zeros((0, self.l, self.k), dtype=np.int64)
        self._fps = np.zeros((0, self.l), dtype=np.int64)
        self._row_of = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, vector: VectorLike, max_tables: int | None = None) -> QueryResult:
        """Probe the tables with ``vector``.

        Parameters
        ----------
        max_tables:
            When given, only the first ``max_tables`` tables (in a random
            order) are probed — the Vanilla-sampling fast path.
        """
        codes = self.hash_family.hash_vector(vector)
        result = QueryResult(codes=codes)
        order = np.arange(self.l)
        if max_tables is not None and max_tables < self.l:
            order = self._rng.permutation(self.l)[:max_tables]
        for table_idx in order:
            result.buckets.append(self._tables[table_idx].query(codes[table_idx]))
        self.num_queries += 1
        return result

    def query_with_codes(self, codes: IntArray) -> QueryResult:
        """Probe every table with pre-computed ``(L, K)`` codes."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (self.l, self.k):
            raise ValueError(f"codes must have shape ({self.l}, {self.k})")
        result = QueryResult(codes=codes)
        for table_idx, table in enumerate(self._tables):
            result.buckets.append(table.query(codes[table_idx]))
        self.num_queries += 1
        return result

    def hash_batch(self, queries: FloatArray) -> IntArray:
        """Codes for a ``(batch, input_dim)`` block of dense queries.

        One call into the hash family's vectorised matrix path (one matmul
        for SimHash, one gather/reduce sweep for (D)WTA/DOPH) replaces
        ``batch`` per-vector hashes.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.input_dim:
            raise ValueError(
                f"queries must have shape (batch, {self.input_dim}), "
                f"got {queries.shape}"
            )
        return self.hash_family.hash_matrix(queries)

    def query_batch_flat(self, queries: FloatArray) -> BatchQueryResult:
        """Probe the tables with a dense query block; flat-array result.

        Hashing, fingerprint packing and the bucket gathers are vectorised
        across the batch — per table, one ``searchsorted`` resolves every
        query's bucket row and one fancy-index gather pulls the slot matrix
        rows.  No per-query Python objects are created.
        """
        codes = self.hash_batch(queries)
        fps = self._fingerprint_matrix(codes)
        batch = codes.shape[0]
        bucket_size = self.config.bucket_size
        candidates = np.full((batch, self.l, bucket_size), -1, dtype=np.int64)
        sizes = np.zeros((batch, self.l), dtype=np.int64)
        for table_idx, table in enumerate(self._tables):
            cand_t, sizes_t = table.query_many(fps[:, table_idx])
            candidates[:, table_idx, :] = cand_t
            sizes[:, table_idx] = sizes_t
        self.num_queries += batch
        return BatchQueryResult(codes=codes, candidates=candidates, sizes=sizes)

    def query_batch(self, queries: FloatArray) -> list[QueryResult]:
        """Probe the tables with every row of a dense query block.

        A compatibility wrapper over :meth:`query_batch_flat` returning one
        :class:`QueryResult` per row, identical to ``[self.query(q) for q in
        queries]`` table-for-table.
        """
        flat = self.query_batch_flat(queries)
        return [flat.result(row) for row in range(flat.batch_size)]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Summary statistics used by tests and the benchmark harness."""
        bucket_counts = np.array([t.num_buckets for t in self._tables])
        items = np.array([t.num_items for t in self._tables])
        load = np.array([t.load_factor() for t in self._tables])
        return {
            "tables": float(self.l),
            "indexed_items": float(self.num_items),
            "mean_buckets_per_table": float(bucket_counts.mean()) if self.l else 0.0,
            "mean_items_per_table": float(items.mean()) if self.l else 0.0,
            "mean_load_factor": float(load.mean()) if self.l else 0.0,
            "insertions": float(self.num_insertions),
            "queries": float(self.num_queries),
            "update_items": float(self.num_update_items),
            "moved_entries": float(self.num_moved_entries),
        }
