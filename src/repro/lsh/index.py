"""The per-layer LSH index: ``L`` hash tables over neuron weight vectors.

This is the data structure at the heart of SLIDE (Figure 2).  It supports:

* bulk construction from a weight matrix (one row per neuron);
* querying with a layer input, returning per-table candidate buckets that the
  sampling strategies (:mod:`repro.sampling`) turn into an active-neuron set;
* full rebuilds and *incremental* rebuilds of a subset of neurons after
  their weights change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import LSHConfig
from repro.hashing.base import LSHFamily, VectorLike
from repro.hashing.factory import make_hash_family
from repro.lsh.policies import make_insertion_policy
from repro.lsh.table import HashTable
from repro.types import FloatArray, IntArray
from repro.utils.rng import derive_rng

__all__ = ["LSHIndex", "QueryResult"]


@dataclass
class QueryResult:
    """Outcome of probing the ``L`` tables with one query vector.

    Attributes
    ----------
    buckets:
        One integer array of candidate neuron ids per table (length ``L``).
    codes:
        The ``(L, K)`` elementary hash codes of the query.
    """

    buckets: list[IntArray] = field(default_factory=list)
    codes: IntArray | None = None

    def union(self) -> IntArray:
        """Unique union of all candidate ids across the probed tables."""
        if not self.buckets:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(self.buckets))

    def frequencies(self) -> tuple[IntArray, IntArray]:
        """Candidate ids with the number of tables in which each appeared."""
        if not self.buckets:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        concatenated = np.concatenate(self.buckets)
        if concatenated.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        ids, counts = np.unique(concatenated, return_counts=True)
        return ids.astype(np.int64), counts.astype(np.int64)

    @property
    def total_candidates(self) -> int:
        """Number of (non-unique) candidates returned across tables."""
        return int(sum(bucket.size for bucket in self.buckets))


class LSHIndex:
    """``L`` hash tables built over the rows of a weight matrix."""

    def __init__(
        self,
        input_dim: int,
        config: LSHConfig,
        seed: int = 0,
    ) -> None:
        self.input_dim = int(input_dim)
        self.config = config
        self.seed = int(seed)
        self._rng = derive_rng(seed, stream=7)
        self.hash_family: LSHFamily = make_hash_family(input_dim, config, seed=seed)
        self._tables = [
            HashTable(
                k=config.k,
                code_cardinality=self.hash_family.code_cardinality,
                bucket_size=config.bucket_size,
                policy=make_insertion_policy(config.insertion_policy, rng=self._rng),
            )
            for _ in range(config.l)
        ]
        # Last-known codes of each inserted item, so incremental updates can
        # remove the item from its previous buckets; the parallel fingerprint
        # cache avoids re-packing codes on removal.
        self._item_codes: dict[int, np.ndarray] = {}
        self._item_fps: dict[int, tuple[int, ...]] = {}
        # Counters used by the cost model and diagnostics.
        self.num_insertions = 0
        self.num_queries = 0

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    @property
    def l(self) -> int:
        return self.config.l

    @property
    def k(self) -> int:
        return self.config.k

    @property
    def tables(self) -> list[HashTable]:
        return self._tables

    @property
    def num_items(self) -> int:
        """Number of distinct items currently indexed."""
        return len(self._item_codes)

    def insert(self, item: int, vector: VectorLike) -> None:
        """Hash ``vector`` and store ``item`` in every table."""
        codes = self.hash_family.hash_vector(vector)
        self._insert_with_codes(item, codes)

    def _insert_with_codes(
        self, item: int, codes: IntArray, fps: tuple[int, ...] | None = None
    ) -> None:
        if fps is None:
            fps = tuple(
                table.fingerprint(codes[table_idx])
                for table_idx, table in enumerate(self._tables)
            )
        previous = self._item_fps.get(item)
        if previous is not None:
            for table_idx, table in enumerate(self._tables):
                table.remove_fingerprint(previous[table_idx], item)
        for table_idx, table in enumerate(self._tables):
            table.insert_fingerprint(fps[table_idx], item)
        self._item_codes[item] = np.array(codes, copy=True)
        self._item_fps[item] = fps
        self.num_insertions += 1

    def _fingerprint_rows(self, all_codes: IntArray) -> list[tuple[int, ...]]:
        """Per-item ``L``-tuples of bucket fingerprints for ``(n, L, K)`` codes.

        One vectorised packing per table replaces the per-item, per-table
        Python loop; this is what makes incremental rebuilds of thousands of
        dirty neurons cheap.
        """
        columns = [
            table.fingerprint_many(all_codes[:, table_idx, :])
            for table_idx, table in enumerate(self._tables)
        ]
        return list(zip(*columns))

    def build(self, weights: FloatArray, item_ids: IntArray | None = None) -> None:
        """(Re)build the index from scratch over the rows of ``weights``."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != self.input_dim:
            raise ValueError("weights must have shape (n_items, input_dim)")
        if item_ids is None:
            item_ids = np.arange(weights.shape[0], dtype=np.int64)
        else:
            item_ids = np.asarray(item_ids, dtype=np.int64)
            if item_ids.shape[0] != weights.shape[0]:
                raise ValueError("item_ids must align with weights rows")
        self.clear()
        all_codes = self.hash_family.hash_matrix(weights)
        all_fps = self._fingerprint_rows(all_codes)
        for row, item in enumerate(item_ids):
            self._insert_with_codes(int(item), all_codes[row], fps=all_fps[row])

    def update(self, item_ids: IntArray, weights: FloatArray) -> None:
        """Re-hash only the given items (incremental rebuild after updates)."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != item_ids.shape[0]:
            raise ValueError("weights rows must align with item_ids")
        codes = self.hash_family.hash_matrix(weights)
        all_fps = self._fingerprint_rows(codes)
        for row, item in enumerate(item_ids):
            self._insert_with_codes(int(item), codes[row], fps=all_fps[row])

    def snapshot_codes(self) -> tuple[IntArray, IntArray]:
        """The indexed items and their codes, in insertion order.

        Returns ``(items, codes)`` with shapes ``(n,)`` and ``(n, L, K)`` —
        everything :meth:`restore_codes` needs to rebuild the tables without
        re-hashing (the serialisation surface used by checkpoints).
        """
        items = np.fromiter(self._item_codes.keys(), dtype=np.int64)
        if items.size:
            codes = np.stack([self._item_codes[int(i)] for i in items]).astype(np.int64)
        else:
            codes = np.zeros((0, self.l, self.k), dtype=np.int64)
        return items, codes

    def restore_codes(self, items: IntArray, codes: IntArray) -> None:
        """Rebuild the tables from a :meth:`snapshot_codes` snapshot.

        Replaying stored codes reproduces bucket membership exactly for any
        bucket that never overflowed; the eviction order of overflowed
        buckets is not preserved.
        """
        items = np.asarray(items, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (items.shape[0], self.l, self.k):
            raise ValueError(
                f"codes must have shape ({items.shape[0]}, {self.l}, {self.k})"
            )
        self.clear()
        all_fps = self._fingerprint_rows(codes)
        for row, item in enumerate(items):
            self._insert_with_codes(int(item), codes[row], fps=all_fps[row])

    def remove(self, item: int) -> bool:
        """Remove ``item`` from every table (if it was indexed)."""
        fps = self._item_fps.pop(item, None)
        self._item_codes.pop(item, None)
        if fps is None:
            return False
        for table_idx, table in enumerate(self._tables):
            table.remove_fingerprint(fps[table_idx], item)
        return True

    def clear(self) -> None:
        """Drop every bucket in every table."""
        for table in self._tables:
            table.clear()
        self._item_codes.clear()
        self._item_fps.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, vector: VectorLike, max_tables: int | None = None) -> QueryResult:
        """Probe the tables with ``vector``.

        Parameters
        ----------
        max_tables:
            When given, only the first ``max_tables`` tables (in a random
            order) are probed — the Vanilla-sampling fast path.
        """
        codes = self.hash_family.hash_vector(vector)
        result = QueryResult(codes=codes)
        order = np.arange(self.l)
        if max_tables is not None and max_tables < self.l:
            order = self._rng.permutation(self.l)[:max_tables]
        for table_idx in order:
            result.buckets.append(self._tables[table_idx].query(codes[table_idx]))
        self.num_queries += 1
        return result

    def query_with_codes(self, codes: IntArray) -> QueryResult:
        """Probe every table with pre-computed ``(L, K)`` codes."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (self.l, self.k):
            raise ValueError(f"codes must have shape ({self.l}, {self.k})")
        result = QueryResult(codes=codes)
        for table_idx, table in enumerate(self._tables):
            result.buckets.append(table.query(codes[table_idx]))
        self.num_queries += 1
        return result

    def hash_batch(self, queries: FloatArray) -> IntArray:
        """Codes for a ``(batch, input_dim)`` block of dense queries.

        One call into the hash family's vectorised matrix path (one matmul
        for SimHash, one gather/reduce sweep for (D)WTA/DOPH) replaces
        ``batch`` per-vector hashes.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.input_dim:
            raise ValueError(
                f"queries must have shape (batch, {self.input_dim}), "
                f"got {queries.shape}"
            )
        return self.hash_family.hash_matrix(queries)

    def query_batch(self, queries: FloatArray) -> list[QueryResult]:
        """Probe the tables with every row of a dense query block.

        Hashing and fingerprint packing are vectorised across the batch;
        only the final bucket lookups (one dictionary access per table per
        query) remain per-sample.  Returns one :class:`QueryResult` per row,
        identical to ``[self.query(q) for q in queries]`` table-for-table.
        """
        codes = self.hash_batch(queries)
        fps_per_table = [
            table.fingerprint_many(codes[:, table_idx, :])
            for table_idx, table in enumerate(self._tables)
        ]
        results = []
        for row in range(codes.shape[0]):
            result = QueryResult(codes=codes[row])
            result.buckets = [
                table.query_fingerprint(fps_per_table[table_idx][row])
                for table_idx, table in enumerate(self._tables)
            ]
            results.append(result)
        self.num_queries += codes.shape[0]
        return results

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Summary statistics used by tests and the benchmark harness."""
        bucket_counts = np.array([t.num_buckets for t in self._tables])
        items = np.array([t.num_items for t in self._tables])
        load = np.array([t.load_factor() for t in self._tables])
        return {
            "tables": float(self.l),
            "indexed_items": float(self.num_items),
            "mean_buckets_per_table": float(bucket_counts.mean()) if self.l else 0.0,
            "mean_items_per_table": float(items.mean()) if self.l else 0.0,
            "mean_load_factor": float(load.mean()) if self.l else 0.0,
            "insertions": float(self.num_insertions),
            "queries": float(self.num_queries),
        }
