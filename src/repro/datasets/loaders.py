"""Loader for the Extreme Classification Repository file format.

The XC repository distributes Delicious-200K and Amazon-670K as text files
whose first line is a header ``num_examples num_features num_labels`` and
each subsequent line is::

    label1,label2,... feat1:val1 feat2:val2 ...

If the real files are available on disk this loader turns them into the same
:class:`~repro.types.SparseExample` lists the synthetic generator produces,
so every experiment in the harness can run on real data unchanged.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.types import SparseExample, SparseVector

__all__ = ["parse_xc_line", "load_xc_file"]


def parse_xc_line(line: str, feature_dim: int) -> SparseExample:
    """Parse one example line of the XC repository format."""
    line = line.strip()
    if not line:
        raise ValueError("cannot parse an empty line")
    parts = line.split(" ")
    label_part = parts[0]
    feature_parts = parts[1:]

    # A line may legitimately have no labels, in which case the first token is
    # already a feature:value pair.
    labels: list[int] = []
    if ":" in label_part:
        feature_parts = parts
    elif label_part:
        labels = [int(token) for token in label_part.split(",") if token != ""]

    indices: list[int] = []
    values: list[float] = []
    for token in feature_parts:
        if not token:
            continue
        feature, _, value = token.partition(":")
        idx = int(feature)
        if idx < 0 or idx >= feature_dim:
            raise ValueError(f"feature index {idx} out of range [0, {feature_dim})")
        indices.append(idx)
        values.append(float(value))

    order = np.argsort(indices)
    features = SparseVector(
        indices=np.asarray(indices, dtype=np.int64)[order],
        values=np.asarray(values, dtype=np.float64)[order],
        dimension=feature_dim,
    )
    return SparseExample(features=features, labels=np.asarray(labels, dtype=np.int64))


def load_xc_file(path: str | Path, max_examples: int | None = None) -> tuple[list[SparseExample], int, int]:
    """Load an XC-format file.

    Returns ``(examples, feature_dim, label_dim)``.  ``max_examples`` truncates
    the file (useful for smoke tests on the very large original datasets).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    examples: list[SparseExample] = []
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().strip().split()
        if len(header) != 3:
            raise ValueError(
                "expected header 'num_examples num_features num_labels', "
                f"got {header!r}"
            )
        num_examples, feature_dim, label_dim = (int(token) for token in header)
        for line_number, line in enumerate(handle):
            if max_examples is not None and len(examples) >= max_examples:
                break
            if not line.strip():
                continue
            try:
                example = parse_xc_line(line, feature_dim)
            except ValueError as exc:
                raise ValueError(f"failed to parse line {line_number + 2}: {exc}") from exc
            if example.labels.size and example.labels.max() >= label_dim:
                raise ValueError(
                    f"label index {example.labels.max()} out of range on line {line_number + 2}"
                )
            examples.append(example)
    expected = num_examples if max_examples is None else min(num_examples, max_examples)
    if max_examples is None and len(examples) != num_examples:
        raise ValueError(
            f"header promised {num_examples} examples but file contains {len(examples)}"
        )
    del expected
    return examples, feature_dim, label_dim
