"""Loader for the Extreme Classification Repository file format.

The XC repository distributes Delicious-200K and Amazon-670K as text files
whose first line is a header ``num_examples num_features num_labels`` and
each subsequent line is::

    label1,label2,... feat1:val1 feat2:val2 ...

If the real files are available on disk this loader turns them into the same
:class:`~repro.types.SparseExample` lists the synthetic generator produces,
so every experiment in the harness can run on real data unchanged.  For the
full-size corpora the eager list-of-objects representation is too heavy;
:mod:`repro.data` builds on :func:`parse_xc_tokens` to stream the same format
into memory-mapped CSR shards instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.types import IntArray, FloatArray, SparseExample, SparseVector

__all__ = [
    "parse_xc_tokens",
    "parse_xc_line",
    "iter_xc_rows",
    "load_xc_file",
    "write_xc_file",
    "read_xc_header",
]


def parse_xc_tokens(
    line: str, feature_dim: int
) -> tuple[IntArray, IntArray, FloatArray]:
    """Parse one XC-format line into ``(labels, feature_indices, values)``.

    Duplicate ``feat:val`` tokens are coalesced by summing their values (the
    CSR convention), and the returned feature indices are sorted and unique —
    the contract every downstream ``searchsorted``/CSR consumer assumes.
    """
    line = line.strip()
    if not line:
        raise ValueError("cannot parse an empty line")
    parts = line.split(" ")
    label_part = parts[0]
    feature_parts = parts[1:]

    # A line may legitimately have no labels, in which case the first token is
    # already a feature:value pair.
    labels: list[int] = []
    if ":" in label_part:
        feature_parts = parts
    elif label_part:
        labels = [int(token) for token in label_part.split(",") if token != ""]

    indices: list[int] = []
    values: list[float] = []
    for token in feature_parts:
        if not token:
            continue
        feature, _, value = token.partition(":")
        idx = int(feature)
        if idx < 0 or idx >= feature_dim:
            raise ValueError(f"feature index {idx} out of range [0, {feature_dim})")
        indices.append(idx)
        values.append(float(value))

    index_array = np.asarray(indices, dtype=np.int64)
    value_array = np.asarray(values, dtype=np.float64)
    if index_array.size:
        order = np.argsort(index_array, kind="stable")
        index_array = index_array[order]
        value_array = value_array[order]
        unique, first = np.unique(index_array, return_index=True)
        if unique.size != index_array.size:
            # Coalesce duplicate features by summing their values.
            value_array = np.add.reduceat(value_array, first)
            index_array = unique
    return np.asarray(labels, dtype=np.int64), index_array, value_array


def parse_xc_line(line: str, feature_dim: int) -> SparseExample:
    """Parse one example line of the XC repository format."""
    labels, indices, values = parse_xc_tokens(line, feature_dim)
    features = SparseVector(indices=indices, values=values, dimension=feature_dim)
    return SparseExample(features=features, labels=labels)


def read_xc_header(line: str) -> tuple[int, int, int]:
    """Parse the ``num_examples num_features num_labels`` header line."""
    header = line.strip().split()
    if len(header) != 3:
        raise ValueError(
            "expected header 'num_examples num_features num_labels', "
            f"got {header!r}"
        )
    num_examples, feature_dim, label_dim = (int(token) for token in header)
    if feature_dim <= 0 or label_dim <= 0:
        raise ValueError("header dimensions must be positive")
    return num_examples, feature_dim, label_dim


def iter_xc_rows(
    path: str | Path,
    feature_dim: int,
    label_dim: int,
    max_examples: int | None = None,
) -> Iterator[tuple[IntArray, IntArray, FloatArray]]:
    """Stream an XC file's body as parsed ``(labels, indices, values)`` rows.

    The single source of truth for the format's line discipline — blank
    lines are skipped, parse errors are wrapped with their 1-based line
    number, labels are range-checked — shared by the eager
    :func:`load_xc_file` and the streaming ingest (:mod:`repro.data.ingest`)
    so the two paths can never drift apart on what they accept.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    count = 0
    with path.open("r", encoding="utf-8") as handle:
        handle.readline()  # the header; callers parse it via read_xc_header
        for line_number, line in enumerate(handle):
            if max_examples is not None and count >= max_examples:
                return
            if not line.strip():
                continue
            try:
                labels, indices, values = parse_xc_tokens(line, feature_dim)
            except ValueError as exc:
                raise ValueError(
                    f"failed to parse line {line_number + 2}: {exc}"
                ) from exc
            if labels.size and labels.max() >= label_dim:
                raise ValueError(
                    f"label index {labels.max()} out of range on line {line_number + 2}"
                )
            count += 1
            yield labels, indices, values


def load_xc_file(path: str | Path, max_examples: int | None = None) -> tuple[list[SparseExample], int, int]:
    """Load an XC-format file.

    Returns ``(examples, feature_dim, label_dim)``.  ``max_examples`` truncates
    the file (useful for smoke tests on the very large original datasets).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        num_examples, feature_dim, label_dim = read_xc_header(handle.readline())
    examples = [
        SparseExample(
            features=SparseVector(
                indices=indices, values=values, dimension=feature_dim
            ),
            labels=labels,
        )
        for labels, indices, values in iter_xc_rows(
            path, feature_dim, label_dim, max_examples
        )
    ]
    if max_examples is None and len(examples) != num_examples:
        raise ValueError(
            f"header promised {num_examples} examples but file contains {len(examples)}"
        )
    return examples, feature_dim, label_dim


def write_xc_file(
    path: str | Path,
    examples: Sequence[SparseExample],
    feature_dim: int,
    label_dim: int,
) -> Path:
    """Write examples back out in the XC repository text format.

    The inverse of :func:`load_xc_file`, used to materialise synthetic
    datasets as real-format files for the ingest pipeline's benchmarks and
    round-trip tests.  An example with neither labels nor features has no
    representation in the format (its line would be blank, and the readers
    skip blank lines), so it is rejected rather than silently breaking the
    round trip.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"{len(examples)} {feature_dim} {label_dim}\n")
        for row, example in enumerate(examples):
            if not example.labels.size and not example.features.nnz:
                raise ValueError(
                    f"example {row} has no labels and no features; the XC text "
                    "format cannot represent a fully empty example"
                )
            labels = ",".join(str(int(label)) for label in example.labels)
            features = " ".join(
                f"{int(idx)}:{float(val):.17g}"
                for idx, val in zip(example.features.indices, example.features.values)
            )
            handle.write(f"{labels} {features}".strip() + "\n")
    return path
