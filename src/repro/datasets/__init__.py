"""Datasets: synthetic extreme-classification generators (matching the shape
of Delicious-200K / Amazon-670K) and a loader for the Extreme Classification
Repository's libsvm-style file format."""

from repro.datasets.synthetic import (
    SyntheticXCConfig,
    SyntheticXCDataset,
    generate_synthetic_xc,
    delicious_like_config,
    amazon_like_config,
)
from repro.datasets.loaders import (
    iter_xc_rows,
    load_xc_file,
    parse_xc_line,
    parse_xc_tokens,
    read_xc_header,
    write_xc_file,
)
from repro.datasets.stats import DatasetStatistics, compute_statistics, PAPER_DATASET_STATS

__all__ = [
    "SyntheticXCConfig",
    "SyntheticXCDataset",
    "generate_synthetic_xc",
    "delicious_like_config",
    "amazon_like_config",
    "iter_xc_rows",
    "load_xc_file",
    "parse_xc_line",
    "parse_xc_tokens",
    "read_xc_header",
    "write_xc_file",
    "DatasetStatistics",
    "compute_statistics",
    "PAPER_DATASET_STATS",
]
