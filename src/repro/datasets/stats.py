"""Dataset statistics (Table 1 of the paper).

``PAPER_DATASET_STATS`` records the numbers reported in Table 1;
:func:`compute_statistics` derives the same columns from any list of
examples, so the benchmark harness can print a side-by-side comparison of
the paper's datasets and the synthetic stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import SparseExample

__all__ = ["DatasetStatistics", "compute_statistics", "PAPER_DATASET_STATS"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The columns of Table 1."""

    name: str
    feature_dim: int
    feature_sparsity: float
    label_dim: int
    training_size: int
    testing_size: int

    def feature_sparsity_percent(self) -> float:
        return 100.0 * self.feature_sparsity

    def as_row(self) -> dict[str, float | int | str]:
        """Plain-dict form used by the report renderer."""
        return {
            "dataset": self.name,
            "feature_dim": self.feature_dim,
            "feature_sparsity_%": round(self.feature_sparsity_percent(), 4),
            "label_dim": self.label_dim,
            "training_size": self.training_size,
            "testing_size": self.testing_size,
        }


# Table 1 as printed in the paper.
PAPER_DATASET_STATS: dict[str, DatasetStatistics] = {
    "Delicious-200K": DatasetStatistics(
        name="Delicious-200K",
        feature_dim=782_585,
        feature_sparsity=0.00038,
        label_dim=205_443,
        training_size=196_606,
        testing_size=100_095,
    ),
    "Amazon-670K": DatasetStatistics(
        name="Amazon-670K",
        feature_dim=135_909,
        feature_sparsity=0.00055,
        label_dim=670_091,
        training_size=490_449,
        testing_size=153_025,
    ),
}


def compute_statistics(
    name: str,
    train: list[SparseExample],
    test: list[SparseExample],
    feature_dim: int,
    label_dim: int,
) -> DatasetStatistics:
    """Compute Table 1 columns for an in-memory dataset."""
    if feature_dim <= 0 or label_dim <= 0:
        raise ValueError("feature_dim and label_dim must be positive")
    if train:
        mean_nnz = float(np.mean([ex.features.nnz for ex in train]))
    else:
        mean_nnz = 0.0
    return DatasetStatistics(
        name=name,
        feature_dim=feature_dim,
        feature_sparsity=mean_nnz / feature_dim if feature_dim else 0.0,
        label_dim=label_dim,
        training_size=len(train),
        testing_size=len(test),
    )
