"""Synthetic extreme-classification datasets.

The paper evaluates on Delicious-200K and Amazon-670K from the Extreme
Classification Repository.  Those corpora cannot be bundled here, so this
module generates synthetic datasets that preserve the properties SLIDE's
claims rest on:

* very high feature dimensionality with *extremely sparse* features
  (Delicious averages ~75 non-zeros out of 782,585 dimensions — 0.038 %);
* a very wide output layer (hundreds of thousands of labels in the paper,
  configurable here);
* power-law (Zipfian) label frequencies, the hallmark of extreme
  classification data;
* learnable structure: each label owns a sparse prototype direction in
  feature space, and an example's features are a noisy mixture of its labels'
  prototypes, so both SLIDE and the dense baselines can actually reach
  non-trivial precision@1 and the convergence comparisons are meaningful.

Scale is fully configurable so unit tests run in milliseconds while the
benchmark harness uses larger instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import SparseExample, SparseVector
from repro.utils.rng import derive_rng

__all__ = [
    "SyntheticXCConfig",
    "SyntheticXCDataset",
    "generate_synthetic_xc",
    "delicious_like_config",
    "amazon_like_config",
]


@dataclass(frozen=True)
class SyntheticXCConfig:
    """Parameters of the synthetic extreme-classification generator."""

    feature_dim: int = 4096
    label_dim: int = 1024
    num_train: int = 2048
    num_test: int = 512
    # Average number of non-zero features per example.
    avg_features_per_example: int = 32
    # Average number of positive labels per example.
    avg_labels_per_example: float = 2.0
    # Number of non-zero coordinates in each label's prototype.
    prototype_nnz: int = 24
    # Zipf exponent controlling label frequency skew (1.0 ~ natural text).
    zipf_exponent: float = 1.05
    # Standard deviation of additive feature noise relative to signal.
    noise_scale: float = 0.3
    seed: int = 0
    name: str = "synthetic-xc"

    def __post_init__(self) -> None:
        if min(self.feature_dim, self.label_dim, self.num_train, self.num_test) <= 0:
            raise ValueError("dimensions and sizes must be positive")
        if self.avg_features_per_example <= 0 or self.prototype_nnz <= 0:
            raise ValueError("sparsity parameters must be positive")
        if self.avg_labels_per_example < 1:
            raise ValueError("avg_labels_per_example must be at least 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")


@dataclass
class SyntheticXCDataset:
    """Generated train/test splits plus the generating prototypes."""

    config: SyntheticXCConfig
    train: list[SparseExample]
    test: list[SparseExample]
    # (label_dim, prototype_nnz) indices and values of each label's prototype.
    prototype_indices: np.ndarray
    prototype_values: np.ndarray
    label_probabilities: np.ndarray

    @property
    def feature_dim(self) -> int:
        return self.config.feature_dim

    @property
    def label_dim(self) -> int:
        return self.config.label_dim

    def feature_sparsity(self) -> float:
        """Fraction of non-zero features per example (as in Table 1)."""
        if not self.train:
            return 0.0
        nnz = np.mean([ex.features.nnz for ex in self.train])
        return float(nnz / self.config.feature_dim)


def _zipf_probabilities(label_dim: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, label_dim + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _generate_example(
    rng: np.random.Generator,
    config: SyntheticXCConfig,
    label_probs: np.ndarray,
    prototype_indices: np.ndarray,
    prototype_values: np.ndarray,
) -> SparseExample:
    # Number of labels: at least one, Poisson-distributed around the mean.
    num_labels = 1 + rng.poisson(max(config.avg_labels_per_example - 1.0, 0.0))
    num_labels = int(min(num_labels, config.label_dim))
    labels = rng.choice(config.label_dim, size=num_labels, replace=False, p=label_probs)

    # Features: union of the label prototypes' supports plus random background
    # coordinates, with additive noise on the values.
    feature_values: dict[int, float] = {}
    for label in labels:
        for idx, value in zip(prototype_indices[label], prototype_values[label]):
            feature_values[int(idx)] = feature_values.get(int(idx), 0.0) + float(value)

    target_nnz = max(
        1, int(rng.poisson(config.avg_features_per_example))
    )
    background_needed = max(0, target_nnz - len(feature_values))
    if background_needed:
        background = rng.integers(0, config.feature_dim, size=background_needed)
        for idx in background:
            feature_values.setdefault(int(idx), 0.0)

    indices = np.array(sorted(feature_values), dtype=np.int64)
    values = np.array([feature_values[i] for i in indices], dtype=np.float64)
    values += rng.normal(scale=config.noise_scale, size=values.shape)
    # Keep the vector non-degenerate: ensure at least one non-zero value.
    if np.allclose(values, 0.0):
        values[0] = 1.0

    features = SparseVector(indices=indices, values=values, dimension=config.feature_dim)
    return SparseExample(features=features, labels=labels)


def generate_synthetic_xc(config: SyntheticXCConfig) -> SyntheticXCDataset:
    """Generate a synthetic extreme-classification dataset."""
    rng = derive_rng(config.seed, stream=61)
    label_probs = _zipf_probabilities(config.label_dim, config.zipf_exponent)

    prototype_nnz = min(config.prototype_nnz, config.feature_dim)
    prototype_indices = np.empty((config.label_dim, prototype_nnz), dtype=np.int64)
    prototype_values = np.empty((config.label_dim, prototype_nnz), dtype=np.float64)
    for label in range(config.label_dim):
        prototype_indices[label] = rng.choice(
            config.feature_dim, size=prototype_nnz, replace=False
        )
        prototype_values[label] = np.abs(rng.normal(loc=1.0, scale=0.25, size=prototype_nnz))

    train = [
        _generate_example(rng, config, label_probs, prototype_indices, prototype_values)
        for _ in range(config.num_train)
    ]
    test = [
        _generate_example(rng, config, label_probs, prototype_indices, prototype_values)
        for _ in range(config.num_test)
    ]
    return SyntheticXCDataset(
        config=config,
        train=train,
        test=test,
        prototype_indices=prototype_indices,
        prototype_values=prototype_values,
        label_probabilities=label_probs,
    )


def delicious_like_config(scale: float = 1.0 / 256.0, seed: int = 0) -> SyntheticXCConfig:
    """A scaled-down Delicious-200K-like configuration.

    Delicious-200K: 782,585 features (0.038 % dense, ~75 nnz), 205,443 labels,
    196,606 train / 100,095 test examples.  ``scale`` shrinks the dimensions
    and sizes proportionally so experiments fit on a laptop; the default
    1/256 gives roughly 3K features x 800 labels.
    """
    scale = float(scale)
    if not 0 < scale <= 1:
        raise ValueError("scale must lie in (0, 1]")
    feature_dim = max(64, int(782_585 * scale))
    # Keep the per-example density in the same regime as the real dataset
    # (a fraction of a percent at full scale); at heavily scaled-down feature
    # dimensions cap the non-zeros so examples stay genuinely sparse.
    avg_nnz = int(min(75, max(16, feature_dim // 16)))
    return SyntheticXCConfig(
        feature_dim=feature_dim,
        label_dim=max(32, int(205_443 * scale)),
        num_train=max(256, int(196_606 * scale)),
        num_test=max(64, int(100_095 * scale)),
        avg_features_per_example=avg_nnz,
        avg_labels_per_example=3.0,
        prototype_nnz=min(24, max(8, avg_nnz // 2)),
        zipf_exponent=1.05,
        noise_scale=0.25,
        seed=seed,
        name=f"delicious-200k-like(scale={scale:g})",
    )


def amazon_like_config(scale: float = 1.0 / 512.0, seed: int = 0) -> SyntheticXCConfig:
    """A scaled-down Amazon-670K-like configuration.

    Amazon-670K: 135,909 features (0.055 % dense, ~75 nnz), 670,091 labels,
    490,449 train / 153,025 test examples.
    """
    scale = float(scale)
    if not 0 < scale <= 1:
        raise ValueError("scale must lie in (0, 1]")
    feature_dim = max(64, int(135_909 * scale))
    avg_nnz = int(min(75, max(16, feature_dim // 16)))
    return SyntheticXCConfig(
        feature_dim=feature_dim,
        label_dim=max(32, int(670_091 * scale)),
        num_train=max(256, int(490_449 * scale)),
        num_test=max(64, int(153_025 * scale)),
        avg_features_per_example=avg_nnz,
        avg_labels_per_example=5.0,
        prototype_nnz=min(24, max(8, avg_nnz // 2)),
        zipf_exponent=1.15,
        noise_scale=0.25,
        seed=seed,
        name=f"amazon-670k-like(scale={scale:g})",
    )
