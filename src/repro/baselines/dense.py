"""Dense full-softmax baseline ("TensorFlow" in the paper's comparison).

A standard one-hidden-layer fully connected network trained with dense matrix
multiplication and a full softmax over every output class.  Per iteration it
performs exactly the computation TF-CPU / TF-GPU would perform, so it serves
two roles:

1. the *convergence* reference — Figure 5's iteration-wise curves show SLIDE
   matching this baseline per iteration;
2. the *work* reference — its per-iteration operation counts feed the device
   profiles that attribute wall-clock time to TF-CPU and TF-GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import OptimizerConfig
from repro.core.activations import relu, relu_grad, softmax_rows
from repro.optim.factory import make_optimizer
from repro.types import FloatArray, IntArray, SparseBatch, SparseExample, dense_features
from repro.utils.rng import derive_rng
from repro.utils.topk import top_k_indices

__all__ = ["DenseNetworkConfig", "DenseNetwork"]


@dataclass(frozen=True)
class DenseNetworkConfig:
    """Architecture/optimiser settings for the dense baseline."""

    input_dim: int
    hidden_dim: int
    output_dim: int
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.input_dim, self.hidden_dim, self.output_dim) <= 0:
            raise ValueError("all dimensions must be positive")


class DenseNetwork:
    """One-hidden-layer ReLU network with a full softmax output."""

    def __init__(self, config: DenseNetworkConfig) -> None:
        self.config = config
        rng = derive_rng(config.seed, stream=41)
        self.w1: FloatArray = rng.normal(
            scale=np.sqrt(2.0 / config.input_dim),
            size=(config.hidden_dim, config.input_dim),
        )
        self.b1: FloatArray = np.zeros(config.hidden_dim, dtype=np.float64)
        self.w2: FloatArray = rng.normal(
            scale=np.sqrt(2.0 / config.hidden_dim),
            size=(config.output_dim, config.hidden_dim),
        )
        self.b2: FloatArray = np.zeros(config.output_dim, dtype=np.float64)

        self.optimizer = make_optimizer(config.optimizer)
        self.optimizer.register("w1", self.w1.shape)
        self.optimizer.register("b1", self.b1.shape)
        self.optimizer.register("w2", self.w2.shape)
        self.optimizer.register("b2", self.b2.shape)
        self.iteration = 0

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, features: FloatArray) -> tuple[FloatArray, FloatArray, FloatArray]:
        """Dense batch forward pass; returns (hidden_pre, hidden, probabilities)."""
        hidden_pre = features @ self.w1.T + self.b1
        hidden = relu(hidden_pre)
        logits = hidden @ self.w2.T + self.b2
        return hidden_pre, hidden, softmax_rows(logits)

    def predict_dense(self, example: SparseExample) -> FloatArray:
        """Class scores for one example (API-compatible with SlideNetwork)."""
        features = example.features.to_dense()[None, :]
        _, _, probabilities = self.forward(features)
        return probabilities[0]

    def predict_dense_batch(self, examples: list[SparseExample]) -> FloatArray:
        """Class scores for many examples (API-compatible with SlideNetwork)."""
        if not examples:
            return np.zeros((0, self.config.output_dim), dtype=np.float64)
        features = dense_features(examples, self.config.input_dim)
        _, _, probabilities = self.forward(features)
        return probabilities

    def predict_top_k(self, example: SparseExample, k: int = 1) -> IntArray:
        return top_k_indices(self.predict_dense(example), k)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_batch(self, batch: SparseBatch) -> dict[str, float]:
        """One full-softmax gradient step on a mini-batch."""
        features = batch.to_dense_features()
        targets = batch.to_dense_labels()
        # Normalise multi-label targets to a distribution per example, as the
        # softmax cross-entropy loss expects.
        label_counts = targets.sum(axis=1, keepdims=True)
        safe_counts = np.maximum(label_counts, 1.0)
        targets = targets / safe_counts

        hidden_pre, hidden, probabilities = self.forward(features)
        batch_size = features.shape[0]

        eps = 1e-12
        loss = float(
            -np.sum(targets * np.log(probabilities + eps)) / max(batch_size, 1)
        )

        # Backward pass (softmax + cross entropy).
        delta_out = (probabilities - targets) / max(batch_size, 1)
        grad_w2 = delta_out.T @ hidden
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2) * relu_grad(hidden_pre)
        grad_w1 = delta_hidden.T @ features
        grad_b1 = delta_hidden.sum(axis=0)

        self.optimizer.begin_step()
        self.optimizer.step("w2", self.w2, grad_w2)
        self.optimizer.step("b2", self.b2, grad_b2)
        self.optimizer.step("w1", self.w1, grad_w1)
        self.optimizer.step("b1", self.b1, grad_b1)
        self.iteration += 1

        return {
            "loss": loss,
            "batch_size": float(batch_size),
            # Dense networks touch every neuron and weight on every sample.
            "active_neurons": float(
                batch_size * (self.config.hidden_dim + self.config.output_dim)
            ),
            "active_weights": float(
                batch_size
                * (
                    self.config.hidden_dim * self.config.input_dim
                    + self.config.output_dim * self.config.hidden_dim
                )
            ),
        }

    # ------------------------------------------------------------------
    # Work accounting for the performance model
    # ------------------------------------------------------------------
    def flops_per_sample(self, avg_input_nnz: float | None = None) -> float:
        """Multiply-accumulate count for one sample's forward+backward pass.

        ``avg_input_nnz`` lets callers account for sparse-aware input layers
        (TF exploits input sparsity in embedding-style lookups); ``None``
        charges the full dense input dimension.
        """
        input_cost = self.config.input_dim if avg_input_nnz is None else avg_input_nnz
        forward = (
            input_cost * self.config.hidden_dim
            + self.config.hidden_dim * self.config.output_dim
        )
        # Backward touches each weight twice (gradient + delta propagation).
        return float(3 * forward)

    def num_parameters(self) -> int:
        return int(self.w1.size + self.b1.size + self.w2.size + self.b2.size)
