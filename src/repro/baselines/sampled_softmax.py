"""Sampled Softmax baseline (Jean et al., 2015) with *static* sampling.

This is the heuristic the paper contrasts with SLIDE in Figure 7: for every
mini-batch the output layer is evaluated only on a candidate set made of the
batch's true labels plus a static (input-independent) random sample of
negative classes.  The sampling distribution never adapts to the input, which
is precisely why the paper finds it converging to a lower accuracy than
SLIDE's LSH-driven adaptive sampling even when it samples 20 % of all classes
versus SLIDE's ~0.5 %.

Both uniform and log-uniform (Zipfian) negative sampling are supported; TF's
``sampled_softmax_loss`` defaults to log-uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.config import OptimizerConfig
from repro.core.activations import relu, relu_grad
from repro.optim.factory import make_optimizer
from repro.types import FloatArray, IntArray, SparseBatch, SparseExample
from repro.utils.rng import derive_rng
from repro.utils.topk import top_k_indices

__all__ = ["SampledSoftmaxConfig", "SampledSoftmaxNetwork"]


@dataclass(frozen=True)
class SampledSoftmaxConfig:
    """Architecture plus sampling settings for the sampled-softmax baseline."""

    input_dim: int
    hidden_dim: int
    output_dim: int
    # Fraction of output classes sampled as negatives per batch.  The paper
    # reports needing ~20 % for "any decent accuracy".
    sample_fraction: float = 0.2
    distribution: Literal["uniform", "log_uniform"] = "log_uniform"
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.input_dim, self.hidden_dim, self.output_dim) <= 0:
            raise ValueError("all dimensions must be positive")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must lie in (0, 1]")

    @property
    def num_sampled(self) -> int:
        """Number of negative classes drawn per batch."""
        return max(1, int(round(self.sample_fraction * self.output_dim)))


class SampledSoftmaxNetwork:
    """One-hidden-layer network trained with static sampled softmax."""

    def __init__(self, config: SampledSoftmaxConfig) -> None:
        self.config = config
        rng = derive_rng(config.seed, stream=43)
        self._rng = derive_rng(config.seed, stream=44)
        self.w1: FloatArray = rng.normal(
            scale=np.sqrt(2.0 / config.input_dim),
            size=(config.hidden_dim, config.input_dim),
        )
        self.b1: FloatArray = np.zeros(config.hidden_dim, dtype=np.float64)
        self.w2: FloatArray = rng.normal(
            scale=np.sqrt(2.0 / config.hidden_dim),
            size=(config.output_dim, config.hidden_dim),
        )
        self.b2: FloatArray = np.zeros(config.output_dim, dtype=np.float64)

        self.optimizer = make_optimizer(config.optimizer)
        self.optimizer.register("w1", self.w1.shape)
        self.optimizer.register("b1", self.b1.shape)
        self.optimizer.register("w2", self.w2.shape)
        self.optimizer.register("b2", self.b2.shape)
        self.iteration = 0

        # Pre-compute the static log-uniform sampling probabilities once; this
        # mirrors TF's ``log_uniform_candidate_sampler`` which assumes classes
        # are sorted by decreasing frequency.
        ranks = np.arange(1, config.output_dim + 1, dtype=np.float64)
        log_uniform = np.log((ranks + 1.0) / ranks)
        self._log_uniform_probs = log_uniform / log_uniform.sum()

    # ------------------------------------------------------------------
    # Candidate sampling
    # ------------------------------------------------------------------
    def sample_candidates(self, batch_labels: IntArray) -> IntArray:
        """Candidate class set for one batch: true labels plus static negatives."""
        num_sampled = self.config.num_sampled
        if self.config.distribution == "uniform":
            negatives = self._rng.choice(
                self.config.output_dim, size=num_sampled, replace=False
            )
        else:
            negatives = self._rng.choice(
                self.config.output_dim,
                size=num_sampled,
                replace=False,
                p=self._log_uniform_probs,
            )
        return np.union1d(np.asarray(batch_labels, dtype=np.int64), negatives)

    # ------------------------------------------------------------------
    # Forward / prediction
    # ------------------------------------------------------------------
    def _hidden(self, features: FloatArray) -> tuple[FloatArray, FloatArray]:
        hidden_pre = features @ self.w1.T + self.b1
        return hidden_pre, relu(hidden_pre)

    def predict_dense(self, example: SparseExample) -> FloatArray:
        """Full-softmax class scores for evaluation."""
        features = example.features.to_dense()[None, :]
        _, hidden = self._hidden(features)
        logits = hidden @ self.w2.T + self.b2
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return (exp / exp.sum(axis=1, keepdims=True))[0]

    def predict_top_k(self, example: SparseExample, k: int = 1) -> IntArray:
        return top_k_indices(self.predict_dense(example), k)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_batch(self, batch: SparseBatch) -> dict[str, float]:
        """One sampled-softmax gradient step on a mini-batch."""
        features = batch.to_dense_features()
        batch_size = features.shape[0]
        all_labels = (
            np.concatenate([ex.labels for ex in batch if ex.labels.size])
            if len(batch)
            else np.zeros(0, dtype=np.int64)
        )
        candidates = self.sample_candidates(all_labels)

        hidden_pre, hidden = self._hidden(features)
        # Softmax restricted to the candidate classes only.
        logits = hidden @ self.w2[candidates].T + self.b2[candidates]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=1, keepdims=True)

        # Targets restricted to the candidate set.
        targets = np.zeros_like(probabilities)
        for row, example in enumerate(batch):
            if example.labels.size == 0:
                continue
            positions = np.searchsorted(candidates, example.labels)
            in_range = positions < candidates.size
            positions = positions[in_range]
            matched = candidates[positions] == example.labels[in_range]
            positions = positions[matched]
            if positions.size:
                targets[row, positions] = 1.0 / example.labels.size

        eps = 1e-12
        loss = float(-np.sum(targets * np.log(probabilities + eps)) / max(batch_size, 1))

        delta_out = (probabilities - targets) / max(batch_size, 1)
        grad_w2_block = delta_out.T @ hidden
        grad_b2_block = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2[candidates]) * relu_grad(hidden_pre)
        grad_w1 = delta_hidden.T @ features
        grad_b1 = delta_hidden.sum(axis=0)

        self.optimizer.begin_step()
        self.optimizer.sparse_step(
            "w2", self.w2, candidates, np.arange(self.config.hidden_dim), grad_w2_block
        )
        self.optimizer.sparse_step("b2", self.b2, candidates, None, grad_b2_block)
        self.optimizer.step("w1", self.w1, grad_w1)
        self.optimizer.step("b1", self.b1, grad_b1)
        self.iteration += 1

        return {
            "loss": loss,
            "batch_size": float(batch_size),
            "num_candidates": float(candidates.size),
            "active_neurons": float(
                batch_size * (self.config.hidden_dim + candidates.size)
            ),
            "active_weights": float(
                batch_size
                * (
                    self.config.hidden_dim * self.config.input_dim
                    + candidates.size * self.config.hidden_dim
                )
            ),
        }

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def flops_per_sample(self, avg_input_nnz: float | None = None) -> float:
        """Multiply-accumulate count for one sample (forward + backward)."""
        input_cost = self.config.input_dim if avg_input_nnz is None else avg_input_nnz
        forward = (
            input_cost * self.config.hidden_dim
            + self.config.hidden_dim * self.config.num_sampled
        )
        return float(3 * forward)

    def num_parameters(self) -> int:
        return int(self.w1.size + self.b1.size + self.w2.size + self.b2.size)
