"""Baselines the paper compares against.

* :class:`~repro.baselines.dense.DenseNetwork` — full-softmax dense training,
  the mathematical equivalent of the TensorFlow CPU/GPU baselines (identical
  per-iteration convergence; wall-clock is attributed by the device profiles
  in :mod:`repro.perf.devices`).
* :class:`~repro.baselines.sampled_softmax.SampledSoftmaxNetwork` — the
  static-sampling Sampled Softmax heuristic (Jean et al., 2015) that Figure 7
  shows converging to a worse accuracy than SLIDE's adaptive sampling.
"""

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.baselines.sampled_softmax import SampledSoftmaxNetwork, SampledSoftmaxConfig

__all__ = [
    "DenseNetwork",
    "DenseNetworkConfig",
    "SampledSoftmaxNetwork",
    "SampledSoftmaxConfig",
]
