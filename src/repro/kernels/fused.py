"""Fused union-active-set forward/backward for one micro-batch.

The per-sample training path does, per example and per layer, a fancy-index
gather, a GEMV, an ``np.outer`` gradient materialisation and an optimiser
``sparse_step``.  The fused path restructures that around the micro-batch:

* the batch's per-sample active sets are unioned per layer; the layer's
  weight block for the union rows (and the union input columns) is gathered
  **once** and a single GEMM computes every sample's pre-activations;
* each sample's own active set is enforced with a 0/1 mask, so ReLU output
  support and the sparse softmax's partition function match the per-sample
  semantics exactly — extra union neurons never leak into a sample's
  activations, next-layer inputs, or loss;
* the batch's weight gradient for the union block is one ``delta^T @ X``
  GEMM accumulated directly into a reusable workspace buffer (no per-sample
  outer products), and it is applied with **one** optimiser step per layer
  per micro-batch.

Numerics: forward activations and the per-sample gradient *contributions*
match the per-sample path to floating-point reduction order.  The optimiser
trajectory in synchronous mode differs deliberately from the legacy loop —
one accumulated Adam/SGD step per batch (standard mini-batch semantics)
instead of ``batch_size`` sequential per-sample block steps.  HOGWILD mode is
untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.activations import hidden_activation_grad, relu, softmax_rows
from repro.kernels.active import select_active_batch
from repro.optim.base import Optimizer
from repro.types import FloatArray, IntArray, SparseBatch

__all__ = [
    "Workspace",
    "FusedLayerState",
    "FusedBatchResult",
    "fused_forward_batch",
    "fused_backward_batch",
    "fused_train_step",
]


class Workspace:
    """Grow-only scratch buffers reused across fused training steps.

    Union active-set sizes vary batch to batch; buffers grow to the largest
    shape seen and later steps slice views out of them, so steady-state
    training performs no per-batch gradient-buffer allocations.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, FloatArray] = {}

    def take(self, name: str, shape: tuple[int, int]) -> FloatArray:
        """A writable ``shape`` view of the named buffer (contents undefined)."""
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape[0] < shape[0] or buffer.shape[1] < shape[1]:
            grown = (
                shape[0] if buffer is None else max(buffer.shape[0], shape[0]),
                shape[1] if buffer is None else max(buffer.shape[1], shape[1]),
            )
            buffer = np.empty(grown, dtype=np.float64)
            self._buffers[name] = buffer
        return buffer[: shape[0], : shape[1]]

    def matmul(self, a: FloatArray, b: FloatArray, name: str) -> FloatArray:
        """``a @ b`` written into the named reusable buffer."""
        out = self.take(name, (a.shape[0], b.shape[1]))
        np.matmul(a, b, out=out)
        return out


@dataclass
class FusedLayerState:
    """Batch-level bookkeeping for one layer of the fused forward pass."""

    # Union of the batch's active output neurons (sorted unique).
    rows: IntArray
    # Fan-in column ids the input block covers (``None`` = every column).
    cols: IntArray | None
    # Gathered weight block ``W[rows][:, cols]`` captured at forward time;
    # backward uses it so delta propagation sees pre-update weights even
    # after this layer's gradient block has been applied.
    block: FloatArray
    # (batch, |cols|) input block and (batch, |rows|) pre/post activations.
    x_block: FloatArray
    pre: FloatArray
    act: FloatArray
    # 0/1 membership mask of each sample's own active set within ``rows``
    # (``None`` when every neuron is active for every sample).
    mask: FloatArray | None
    # Per-sample active sets (``None`` for dense layers).
    active_sets: list[IntArray] | None
    activation_name: str
    sampled_from_tables: int = 0
    fallback_random: int = 0

    def active_count(self, batch_size: int) -> int:
        if self.active_sets is None:
            return batch_size * int(self.rows.size)
        return int(sum(active.size for active in self.active_sets))


@dataclass
class FusedBatchResult:
    """Everything the training step needs from one fused forward pass."""

    layer_states: list[FusedLayerState]
    # (batch,) per-sample input-column counts per layer, for work accounting.
    input_counts: list[IntArray] = field(default_factory=list)

    @property
    def output_state(self) -> FusedLayerState:
        return self.layer_states[-1]

    def total_active_neurons(self, batch_size: int) -> int:
        return sum(s.active_count(batch_size) for s in self.layer_states)

    def total_active_weights(self, batch_size: int) -> int:
        total = 0
        for state, in_counts in zip(self.layer_states, self.input_counts):
            if state.active_sets is None:
                total += int(state.rows.size) * int(in_counts.sum())
            else:
                out_counts = np.array(
                    [active.size for active in state.active_sets], dtype=np.int64
                )
                total += int(np.dot(out_counts, in_counts))
        return total


def _masked_softmax_rows(pre: FloatArray, mask: FloatArray) -> FloatArray:
    """Row-wise softmax over each row's masked-in entries only.

    Equivalent to running :func:`~repro.core.activations.sparse_softmax` on
    every row restricted to its own active subset: masked-out entries get
    probability zero and do not enter the partition function.  Rows with no
    active entries come back all-zero.
    """
    neg_inf = np.where(mask > 0.0, pre, -np.inf)
    row_max = neg_inf.max(axis=1, keepdims=True)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    exp = np.exp(neg_inf - row_max)
    norm = exp.sum(axis=1, keepdims=True)
    return np.divide(exp, norm, out=np.zeros_like(exp), where=norm > 0.0)


def _scatter_dense(
    x_block: FloatArray, cols: IntArray | None, width: int
) -> FloatArray:
    """Expand a column-restricted block back to ``(batch, width)`` dense."""
    if cols is None:
        return x_block
    dense = np.zeros((x_block.shape[0], width), dtype=np.float64)
    dense[:, cols] = x_block
    return dense


def fused_forward_batch(
    network,
    batch: SparseBatch,
    include_labels: bool = False,
) -> FusedBatchResult:
    """Union-active-set forward pass for a whole micro-batch.

    Per layer: one batched LSH selection, one weight-block gather, one GEMM.
    Sample-level sparsity semantics (active-set membership, ReLU pruning,
    sparse softmax support) match ``forward_sample`` run per example.
    """
    batch_size = len(batch)
    features = batch.to_dense_features()
    support = [example.features.indices for example in batch]
    cols: IntArray | None = (
        np.unique(np.concatenate(support)) if support else np.zeros(0, dtype=np.int64)
    )
    x_block = features[:, cols]
    input_counts = np.array(
        [example.features.indices.size for example in batch], dtype=np.int64
    )

    states: list[FusedLayerState] = []
    result = FusedBatchResult(layer_states=states)
    num_layers = len(network.layers)
    timer = getattr(network, "phase_timer", None)
    gemm_seconds = 0.0
    for layer_idx, layer in enumerate(network.layers):
        is_output = layer_idx == num_layers - 1
        forced: list[IntArray | None] | None = None
        if is_output and include_labels and layer.config.sampling.include_labels:
            forced = [
                example.labels if example.labels.size else None for example in batch
            ]

        if layer.lsh_index is not None:
            queries = (
                features
                if layer_idx == 0
                else _scatter_dense(x_block, cols, layer.fan_in)
            )
            # select_active_batch splits its own time into "hash" (the
            # vectorised table probe) and "select" (per-sample strategy).
            selections = select_active_batch(layer, queries, forced, timer=timer)
            active_sets: list[IntArray] | None = [sel[0] for sel in selections]
            from_tables = sum(sel[1] for sel in selections)
            fallback = sum(sel[2] for sel in selections)
            non_empty = [active for active in active_sets if active.size]
            rows = (
                np.unique(np.concatenate(non_empty))
                if non_empty
                else np.zeros(0, dtype=np.int64)
            )
        else:
            active_sets = None
            from_tables = fallback = 0
            rows = np.arange(layer.size, dtype=np.int64)

        gemm_start = time.perf_counter()
        block = (
            layer.weights[rows]
            if cols is None
            else layer.weights[np.ix_(rows, cols)]
        )
        pre = x_block @ block.T + layer.biases[rows]

        mask: FloatArray | None = None
        if active_sets is not None:
            mask = np.zeros_like(pre)
            for row_idx, active in enumerate(active_sets):
                if active.size:
                    mask[row_idx, np.searchsorted(rows, active)] = 1.0

        if layer.activation_name == "relu":
            act = relu(pre)
            if mask is not None:
                act *= mask
        elif layer.activation_name == "softmax":
            if mask is not None:
                act = _masked_softmax_rows(pre, mask)
            else:
                act = softmax_rows(pre)
        elif layer.activation_name == "linear":
            act = pre * mask if mask is not None else pre.copy()
        else:  # pragma: no cover - config validation prevents this
            raise ValueError(f"unknown activation {layer.activation_name!r}")

        layer.num_forward_calls += batch_size
        states.append(
            FusedLayerState(
                rows=rows,
                cols=cols,
                block=block,
                x_block=x_block,
                pre=pre,
                act=act,
                mask=mask,
                active_sets=active_sets,
                activation_name=layer.activation_name,
                sampled_from_tables=from_tables,
                fallback_random=fallback,
            )
        )
        result.input_counts.append(input_counts)

        # This layer's masked activations feed the next layer; zero entries
        # (masked out or killed by ReLU) contribute nothing to the next GEMM,
        # mirroring the per-sample path's explicit zero pruning.
        x_block = act
        cols = rows
        input_counts = np.count_nonzero(act, axis=1).astype(np.int64)
        gemm_seconds += time.perf_counter() - gemm_start

    if timer is not None:
        timer.add("gather_gemm", gemm_seconds)
    return result


def _output_targets_and_losses(
    batch: SparseBatch, output_state: FusedLayerState
) -> tuple[FloatArray, FloatArray]:
    """Cross-entropy targets over the union set and per-sample losses.

    Mirrors the label-matching block of ``compute_sample_gradient``: each
    ground-truth label present in the sample's *own* active set receives
    probability mass ``1/|labels|``; labels outside it contribute nothing.
    ``output_state.rows`` is sorted (guaranteed by ``finalize_active``), so
    ``searchsorted`` label lookup is exact.
    """
    probabilities = output_state.act
    rows = output_state.rows
    target = np.zeros_like(probabilities)
    losses = np.zeros(probabilities.shape[0], dtype=np.float64)
    for sample_idx, example in enumerate(batch):
        labels = example.labels
        if not labels.size or rows.size == 0:
            continue
        positions = np.searchsorted(rows, labels)
        in_range = positions < rows.size
        positions = positions[in_range]
        matched = rows[positions] == labels[in_range]
        label_positions = positions[matched]
        if output_state.mask is not None and label_positions.size:
            label_positions = label_positions[
                output_state.mask[sample_idx, label_positions] > 0.0
            ]
        if label_positions.size:
            target[sample_idx, label_positions] = 1.0 / labels.size
            losses[sample_idx] = float(
                -np.sum(
                    target[sample_idx, label_positions]
                    * np.log(probabilities[sample_idx, label_positions] + 1e-12)
                )
            )
    return target, losses


def fused_backward_batch(
    network,
    batch: SparseBatch,
    result: FusedBatchResult,
    optimizer: Optimizer,
    workspace: Workspace,
) -> FloatArray:
    """Backward pass + one accumulated optimiser step per layer.

    The weight gradient of layer ``l`` is the single GEMM ``delta_l^T @
    X_l / batch`` over the union block — the mean of the per-sample outer
    products the per-sample path would materialise — written into a reusable
    workspace buffer and applied with one ``sparse_step``.  Returns the
    per-sample losses.
    """
    batch_size = len(batch)
    states = result.layer_states
    timer = getattr(network, "phase_timer", None)
    gemm_seconds = 0.0
    optim_seconds = 0.0
    target, losses = _output_targets_and_losses(batch, result.output_state)
    # Softmax + cross-entropy: dL/dz = p - y on each sample's active set
    # (both terms vanish outside it).
    delta = result.output_state.act - target
    scale = 1.0 / max(batch_size, 1)

    for layer_idx in range(len(states) - 1, -1, -1):
        layer = network.layers[layer_idx]
        state = states[layer_idx]

        gemm_start = time.perf_counter()
        weight_grad = workspace.matmul(delta.T, state.x_block, f"wgrad{layer_idx}")
        weight_grad *= scale
        bias_grad = delta.sum(axis=0)
        bias_grad *= scale

        if layer_idx > 0:
            below = states[layer_idx - 1]
            # ``state.block`` is the forward-time weight copy, so delta
            # propagation is unaffected by this layer's update landing first.
            d_act_below = delta @ state.block
            grad_mask = hidden_activation_grad(below.activation_name, below.pre)
            if below.mask is not None:
                grad_mask *= below.mask
            next_delta = d_act_below * grad_mask
        else:
            next_delta = None
        gemm_seconds += time.perf_counter() - gemm_start

        optim_start = time.perf_counter()
        layer.apply_gradient_block(
            optimizer, state.rows, state.cols, weight_grad, bias_grad
        )
        optim_seconds += time.perf_counter() - optim_start
        if next_delta is not None:
            delta = next_delta

    if timer is not None:
        timer.add("gather_gemm", gemm_seconds)
        timer.add("optimiser", optim_seconds)
    return losses


def fused_train_step(
    network,
    batch: SparseBatch,
    optimizer: Optimizer,
    workspace: Workspace | None = None,
) -> dict[str, float]:
    """One synchronous batched training step (forward + backward + update).

    The caller (``SlideNetwork.train_batch``) owns the iteration counter and
    rebuild schedule; this function only performs the fused math and returns
    the same metrics dictionary as the per-sample modes.
    """
    batch_size = len(batch)
    if batch_size == 0:
        return {
            "loss": 0.0,
            "active_neurons": 0.0,
            "active_weights": 0.0,
            "batch_size": 0.0,
        }
    if workspace is None:
        workspace = Workspace()
    optimizer.begin_step()
    result = fused_forward_batch(network, batch, include_labels=True)
    losses = fused_backward_batch(network, batch, result, optimizer, workspace)
    return {
        "loss": float(losses.mean()) if losses.size else 0.0,
        "active_neurons": float(result.total_active_neurons(batch_size)),
        "active_weights": float(result.total_active_weights(batch_size)),
        "batch_size": float(batch_size),
    }
