"""Batched active-neuron selection.

The per-sample path (:meth:`repro.core.layer.SlideLayer.select_active`)
hashes one query vector at a time — for SimHash that is a ``(K*L, nnz)``
gather and reduction *per sample*, which dominates the cost of a training
step.  :func:`select_active_batch` hashes the whole micro-batch in one
:meth:`~repro.lsh.index.LSHIndex.hash_batch` call (one matmul per SimHash
family, one gather/reduce sweep for (D)WTA/DOPH), packs bucket fingerprints
vectorised, and only then walks the per-sample bucket lookups.

RNG compatibility: the sampling strategies draw from the layer's generator in
the same order whether they are fed a fresh query
(``SamplingStrategy.sample``) or a pre-computed
:class:`~repro.lsh.index.QueryResult` (``select_from_result``) — one table
permutation, plus one subset draw when over target.  Random fallback padding
goes through the shared :meth:`~repro.core.layer.SlideLayer.finalize_active`.
The batched selection therefore consumes the layer RNG identically to the
per-sample path, which is what the kernel parity tests pin down.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.layer import SlideLayer
from repro.types import FloatArray, IntArray

__all__ = ["select_active_batch"]


def select_active_batch(
    layer: SlideLayer,
    dense_queries: FloatArray,
    forced_active: list[IntArray | None] | None = None,
    timer=None,
) -> list[tuple[IntArray, int, int]]:
    """Active output sets for a ``(batch, fan_in)`` block of dense queries.

    Returns one ``(active_ids, sampled_from_tables, fallback_random)`` tuple
    per row, matching :meth:`SlideLayer.select_active` sample-for-sample.
    ``forced_active`` optionally supplies per-sample ids (e.g. ground-truth
    labels) that are always unioned into the corresponding active set.
    ``timer`` (a :class:`~repro.perf.phases.PhaseTimer`) optionally receives
    the split between the vectorised table probe (``hash``) and the
    per-sample strategy selection (``select``).
    """
    dense_queries = np.asarray(dense_queries, dtype=np.float64)
    if dense_queries.ndim != 2 or dense_queries.shape[1] != layer.fan_in:
        raise ValueError(
            f"queries must have shape (batch, {layer.fan_in}), "
            f"got {dense_queries.shape}"
        )
    batch_size = dense_queries.shape[0]
    if forced_active is not None and len(forced_active) != batch_size:
        raise ValueError("forced_active must align with the query rows")

    if layer.lsh_index is None or layer.sampler is None:
        all_active = np.arange(layer.size, dtype=np.int64)
        return [(all_active, 0, 0) for _ in range(batch_size)]

    target = layer.config.sampling.target_active
    # One flat batched probe: hashing, fingerprint packing and the bucket
    # gathers are vectorised across the batch; per-row QueryResult views are
    # materialised lazily only for the sampler hand-off.
    probe_start = time.perf_counter()
    flat = layer.lsh_index.query_batch_flat(dense_queries)
    select_start = time.perf_counter()
    selections: list[tuple[IntArray, int, int]] = []
    for row in range(batch_size):
        sampled = layer.sampler.select_from_result(flat.result(row), target)
        forced = forced_active[row] if forced_active is not None else None
        selections.append(layer.finalize_active(sampled, forced))
    if timer is not None:
        timer.add("hash", select_start - probe_start)
        timer.add("select", time.perf_counter() - select_start)
    return selections
