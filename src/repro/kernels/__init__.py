"""Batched sparse kernels — the vectorised training/serving hot path.

The per-sample training loop in :mod:`repro.core.network` pays Python and
NumPy call overhead for every example: one LSH hash, one ``np.ix_`` gather,
one GEMV, one ``np.outer`` and one optimiser step per sample per layer.  The
kernels in this package restructure that work around the micro-batch:

* :mod:`repro.kernels.active` — hash an entire batch of queries with one
  matrix operation per hash family and turn the per-sample buckets into
  active sets (RNG-compatible with the per-sample selection path);
* :mod:`repro.kernels.fused` — forward/backward over the *union* active set
  of the batch: one gather + GEMM per layer instead of a gather + GEMV per
  sample, with each sample's own active set enforced by masking so sparse
  softmax/ReLU semantics match the per-sample path, and the whole batch's
  weight gradient accumulated into one reusable block buffer.

``SlideNetwork.train_batch(..., hogwild=False)`` routes through
:func:`~repro.kernels.fused.fused_train_step` by default; the HOGWILD
per-sample path is untouched and remains the asynchronous mode.
"""

from repro.kernels.active import select_active_batch
from repro.kernels.fused import (
    FusedBatchResult,
    FusedLayerState,
    Workspace,
    fused_forward_batch,
    fused_train_step,
)

__all__ = [
    "select_active_batch",
    "FusedBatchResult",
    "FusedLayerState",
    "Workspace",
    "fused_forward_batch",
    "fused_train_step",
]
