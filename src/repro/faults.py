"""Deterministic fault injection for the training runtime.

Chaos testing a multi-process trainer with ad-hoc ``kill`` calls produces
flaky tests; this module makes every injected failure *reproducible*: a
:class:`FaultPlan` is a picklable list of :class:`FaultSpec` entries that
travels to the worker processes inside their spawn payload, and each worker
drives a :class:`FaultInjector` that fires the planned fault at an exact
``(worker_id, batch)`` coordinate.  Supported fault kinds:

* ``kill``  — ``SIGKILL`` the worker's own process (no cleanup, no result
  message: the hard-death path the supervisor must detect via exitcode).
* ``crash`` — raise :class:`InjectedFault` (the soft-death path: the worker
  relays the error through the result queue before exiting).
* ``hang``  — stop making progress without dying: sleep in a loop for
  ``duration_s`` *without* stamping the heartbeat, so only stale-heartbeat
  detection can catch it.
* ``slow``  — sleep ``duration_s`` before the batch (heartbeats keep
  flowing; exercises the non-fault path of hang detection).

Faults fire on the *global* batch count of a worker slot across restarts;
``once=True`` (default) restricts a fault to incarnation 0 so a restarted
worker does not immediately re-trip the same fault — which is what lets a
test assert "kill worker 1 at batch 3, then the run still completes".

Two storage-level helpers round out the failure surface used by tests and
``benchmarks/bench_fault_recovery.py``:

* :func:`tear_checkpoint` simulates a crash mid-write by truncating a
  checkpoint's array payload (the SHA-256 check must refuse it);
* :func:`corrupt_shared_array` scribbles NaNs over a shared parameter
  block (the workers' non-finite loss guard must surface it).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "tear_checkpoint",
    "corrupt_shared_array",
]

FAULT_KINDS = ("kill", "crash", "hang", "slow")


class InjectedFault(RuntimeError):
    """Raised by ``crash`` faults (and surfaced through the result queue)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what happens, to which worker, at which batch.

    ``at_batch`` counts the batches a worker slot has *started* (0-based,
    across items and across restarts of the slot); the fault fires just
    before that batch trains.  ``duration_s`` applies to ``hang``/``slow``.
    ``once=True`` fires only in the slot's first incarnation.
    """

    kind: str
    worker_id: int
    at_batch: int
    duration_s: float = 0.0
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.worker_id < 0:
            raise ValueError("worker_id must be non-negative")
        if self.at_batch < 0:
            raise ValueError("at_batch must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "at_batch": self.at_batch,
            "duration_s": self.duration_s,
            "once": self.once,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            worker_id=int(data["worker_id"]),
            at_batch=int(data["at_batch"]),
            duration_s=float(data.get("duration_s", 0.0)),
            once=bool(data.get("once", True)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of planned faults."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def kill_worker(cls, worker_id: int, at_batch: int) -> "FaultPlan":
        """The most common chaos scenario: SIGKILL one worker mid-run."""
        return cls.of(FaultSpec(kind="kill", worker_id=worker_id, at_batch=at_batch))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_worker(self, worker_id: int) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.worker_id == worker_id)

    def to_dict(self) -> dict[str, Any]:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        specs: Iterable[Mapping[str, Any]] = data.get("specs", ())
        return cls(specs=tuple(FaultSpec.from_dict(s) for s in specs))


@dataclass
class FaultInjector:
    """Worker-side trigger: fires this slot's faults at their batch index.

    Created inside the worker from the payload's plan; ``on_batch`` is
    called once per batch *before* training it.  ``incarnation`` is the
    restart count of the worker slot (0 for the original launch), used to
    suppress ``once`` faults after a restart; ``start_batch`` offsets the
    batch counter so a restarted worker that fast-forwards past already
    trained batches keeps the global coordinate system.
    """

    specs: tuple[FaultSpec, ...] = ()
    incarnation: int = 0
    start_batch: int = 0
    batches_seen: int = field(default=0, init=False)

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], worker_id: int, incarnation: int
    ) -> "FaultInjector":
        plan_data = payload.get("fault_plan")
        plan = FaultPlan.from_dict(plan_data) if plan_data else FaultPlan()
        return cls(
            specs=plan.for_worker(worker_id),
            incarnation=incarnation,
            start_batch=int(payload.get("start_batch", 0)),
        )

    def on_batch(self) -> None:
        """Fire any fault planned for the current batch, then advance."""
        batch = self.start_batch + self.batches_seen
        self.batches_seen += 1
        for spec in self.specs:
            if spec.at_batch != batch:
                continue
            if spec.once and self.incarnation != 0:
                continue
            self._fire(spec)

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60.0)  # pragma: no cover - never survives the signal
        elif spec.kind == "crash":
            raise InjectedFault(
                f"injected crash in worker {spec.worker_id} "
                f"at batch {spec.at_batch}"
            )
        elif spec.kind == "hang":
            # Busy-wait in small sleeps without touching the heartbeat: the
            # process stays alive, so only staleness detection can catch it.
            deadline = time.monotonic() + spec.duration_s
            while time.monotonic() < deadline:
                time.sleep(0.01)
        elif spec.kind == "slow":
            time.sleep(spec.duration_s)


# ----------------------------------------------------------------------
# Storage-level fault helpers
# ----------------------------------------------------------------------
def tear_checkpoint(path: str | Path, keep_bytes: int = 128) -> Path:
    """Truncate a checkpoint's array payload, simulating a torn write.

    The manifest (and its recorded SHA-256) is left intact, so loading the
    checkpoint must fail the checksum — exactly what a crash between the
    payload write and the directory rename can leave behind on filesystems
    without atomic rename, or what bit rot produces later.
    """
    path = Path(path)
    arrays = path / "arrays.npz"
    if not arrays.is_file():
        raise FileNotFoundError(f"no arrays.npz under {path}")
    payload = arrays.read_bytes()
    arrays.write_bytes(payload[: min(keep_bytes, max(len(payload) - 1, 0))])
    return path


def corrupt_shared_array(array: np.ndarray, fraction: float = 0.25, seed: int = 0) -> int:
    """Overwrite a deterministic slice of ``array`` with NaNs.

    Models a corrupted shared-memory block (bad DIMM, stray writer).  Only
    meaningful for float arrays; returns the number of elements poisoned.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    flat = array.reshape(-1)
    count = max(1, int(flat.size * fraction))
    rng = np.random.default_rng(seed)
    index = rng.choice(flat.size, size=count, replace=False)
    flat[index] = np.nan
    return count
