"""Deterministic fault injection for the training runtime.

Chaos testing a multi-process trainer with ad-hoc ``kill`` calls produces
flaky tests; this module makes every injected failure *reproducible*: a
:class:`FaultPlan` is a picklable list of :class:`FaultSpec` entries that
travels to the worker processes inside their spawn payload, and each worker
drives a :class:`FaultInjector` that fires the planned fault at an exact
``(worker_id, batch)`` coordinate.  Supported fault kinds:

* ``kill``  — ``SIGKILL`` the worker's own process (no cleanup, no result
  message: the hard-death path the supervisor must detect via exitcode).
* ``crash`` — raise :class:`InjectedFault` (the soft-death path: the worker
  relays the error through the result queue before exiting).
* ``hang``  — stop making progress without dying: sleep in a loop for
  ``duration_s`` *without* stamping the heartbeat, so only stale-heartbeat
  detection can catch it.
* ``slow``  — sleep ``duration_s`` before the batch (heartbeats keep
  flowing; exercises the non-fault path of hang detection).

Faults fire on the *global* batch count of a worker slot across restarts;
``once=True`` (default) restricts a fault to incarnation 0 so a restarted
worker does not immediately re-trip the same fault — which is what lets a
test assert "kill worker 1 at batch 3, then the run still completes".

Two storage-level helpers round out the failure surface used by tests and
``benchmarks/bench_fault_recovery.py``:

* :func:`tear_checkpoint` simulates a crash mid-write by truncating a
  checkpoint's array payload (the SHA-256 check must refuse it);
* :func:`corrupt_shared_array` scribbles NaNs over a shared parameter
  block (the workers' non-finite loss guard must surface it).

The serving side gets the same determinism through
:class:`ServingFaultPlan` / :class:`ServingFaultInjector`: an injector is
attached to one replica's inference engine
(``engine.fault_injector = plan.injector_for(replica)``) and fires at exact
*request* coordinates — the engine advances the counter by the batch size on
every guarded batch, and a fault whose ``[at_request, at_request + count)``
window overlaps the batch triggers:

* ``predict_hang`` — the worker thread sleeps ``duration_s`` mid-request
  without failing, the replica stops answering (what the router's attempt
  timeout and health probe must catch);
* ``predict_slow`` — adds ``duration_s`` latency to each affected batch
  (degraded, not dead: must *not* trip liveness, may trip a p99 breaker);
* ``predict_crash`` — raises :class:`InjectedFault` from the engine, failing
  every request in the batch (the retry path's bread and butter);
* ``checkpoint_load_fail`` — the next ``count`` checkpoint loads on this
  replica raise (a bad publish: the watcher must count it, back off, and
  keep serving the resident weights).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "ServingFaultSpec",
    "ServingFaultPlan",
    "ServingFaultInjector",
    "tear_checkpoint",
    "corrupt_shared_array",
]

FAULT_KINDS = ("kill", "crash", "hang", "slow")
SERVING_FAULT_KINDS = (
    "predict_hang",
    "predict_slow",
    "predict_crash",
    "checkpoint_load_fail",
)


class InjectedFault(RuntimeError):
    """Raised by ``crash`` faults (and surfaced through the result queue)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what happens, to which worker, at which batch.

    ``at_batch`` counts the batches a worker slot has *started* (0-based,
    across items and across restarts of the slot); the fault fires just
    before that batch trains.  ``duration_s`` applies to ``hang``/``slow``.
    ``once=True`` fires only in the slot's first incarnation.
    """

    kind: str
    worker_id: int
    at_batch: int
    duration_s: float = 0.0
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.worker_id < 0:
            raise ValueError("worker_id must be non-negative")
        if self.at_batch < 0:
            raise ValueError("at_batch must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "at_batch": self.at_batch,
            "duration_s": self.duration_s,
            "once": self.once,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            worker_id=int(data["worker_id"]),
            at_batch=int(data["at_batch"]),
            duration_s=float(data.get("duration_s", 0.0)),
            once=bool(data.get("once", True)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of planned faults."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def kill_worker(cls, worker_id: int, at_batch: int) -> "FaultPlan":
        """The most common chaos scenario: SIGKILL one worker mid-run."""
        return cls.of(FaultSpec(kind="kill", worker_id=worker_id, at_batch=at_batch))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_worker(self, worker_id: int) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.worker_id == worker_id)

    def to_dict(self) -> dict[str, Any]:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        specs: Iterable[Mapping[str, Any]] = data.get("specs", ())
        return cls(specs=tuple(FaultSpec.from_dict(s) for s in specs))


@dataclass
class FaultInjector:
    """Worker-side trigger: fires this slot's faults at their batch index.

    Created inside the worker from the payload's plan; ``on_batch`` is
    called once per batch *before* training it.  ``incarnation`` is the
    restart count of the worker slot (0 for the original launch), used to
    suppress ``once`` faults after a restart; ``start_batch`` offsets the
    batch counter so a restarted worker that fast-forwards past already
    trained batches keeps the global coordinate system.
    """

    specs: tuple[FaultSpec, ...] = ()
    incarnation: int = 0
    start_batch: int = 0
    batches_seen: int = field(default=0, init=False)

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], worker_id: int, incarnation: int
    ) -> "FaultInjector":
        plan_data = payload.get("fault_plan")
        plan = FaultPlan.from_dict(plan_data) if plan_data else FaultPlan()
        return cls(
            specs=plan.for_worker(worker_id),
            incarnation=incarnation,
            start_batch=int(payload.get("start_batch", 0)),
        )

    def on_batch(self) -> None:
        """Fire any fault planned for the current batch, then advance."""
        batch = self.start_batch + self.batches_seen
        self.batches_seen += 1
        for spec in self.specs:
            if spec.at_batch != batch:
                continue
            if spec.once and self.incarnation != 0:
                continue
            self._fire(spec)

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60.0)  # pragma: no cover - never survives the signal
        elif spec.kind == "crash":
            raise InjectedFault(
                f"injected crash in worker {spec.worker_id} "
                f"at batch {spec.at_batch}"
            )
        elif spec.kind == "hang":
            # Busy-wait in small sleeps without touching the heartbeat: the
            # process stays alive, so only staleness detection can catch it.
            deadline = time.monotonic() + spec.duration_s
            while time.monotonic() < deadline:
                time.sleep(0.01)
        elif spec.kind == "slow":
            time.sleep(spec.duration_s)


# ----------------------------------------------------------------------
# Serving-side faults (replica chaos for the router bench/tests)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServingFaultSpec:
    """One planned serving fault on one replica.

    ``at_request`` is the 0-based index of the first affected request in
    the replica's guarded-predict stream (batches advance the counter by
    their size); ``count`` is how many consecutive requests the window
    covers.  For ``checkpoint_load_fail`` the coordinate counts checkpoint
    *load attempts* instead of requests.  ``duration_s`` applies to
    ``predict_hang`` / ``predict_slow``.
    """

    kind: str
    replica: str
    at_request: int = 0
    count: int = 1
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVING_FAULT_KINDS:
            raise ValueError(
                f"unknown serving fault kind {self.kind!r}; "
                f"expected one of {SERVING_FAULT_KINDS}"
            )
        if self.at_request < 0:
            raise ValueError("at_request must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "replica": self.replica,
            "at_request": self.at_request,
            "count": self.count,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingFaultSpec":
        return cls(
            kind=str(data["kind"]),
            replica=str(data["replica"]),
            at_request=int(data.get("at_request", 0)),
            count=int(data.get("count", 1)),
            duration_s=float(data.get("duration_s", 0.0)),
        )


@dataclass(frozen=True)
class ServingFaultPlan:
    """An immutable collection of planned serving faults."""

    specs: tuple[ServingFaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: ServingFaultSpec) -> "ServingFaultPlan":
        return cls(specs=tuple(specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_replica(self, replica: str) -> tuple[ServingFaultSpec, ...]:
        return tuple(s for s in self.specs if s.replica == replica)

    def injector_for(self, replica: str) -> "ServingFaultInjector":
        """The per-replica injector to attach as ``engine.fault_injector``."""
        return ServingFaultInjector(specs=self.for_replica(replica))

    def to_dict(self) -> dict[str, Any]:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingFaultPlan":
        specs: Iterable[Mapping[str, Any]] = data.get("specs", ())
        return cls(specs=tuple(ServingFaultSpec.from_dict(s) for s in specs))


class ServingFaultInjector:
    """Replica-side trigger: fires planned faults at request coordinates.

    Attached to an inference engine as ``engine.fault_injector``; the
    engine calls :meth:`on_predict` once per guarded batch (advancing the
    request counter by the batch size) and the checkpoint watcher calls
    :meth:`on_checkpoint_load` once per load attempt.  Thread-safe — pool
    workers predict concurrently.
    """

    def __init__(self, specs: Iterable[ServingFaultSpec] = ()) -> None:
        self.specs = tuple(specs)
        self.requests_seen = 0
        self.loads_seen = 0
        self.fired: list[str] = []
        self._lock = threading.Lock()

    def _window_hits(self, kind: str, start: int, size: int) -> "ServingFaultSpec | None":
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if start < spec.at_request + spec.count and spec.at_request < start + size:
                return spec
        return None

    def on_predict(self, batch_size: int) -> None:
        """Fire any predict fault overlapping the next ``batch_size`` requests."""
        with self._lock:
            start = self.requests_seen
            self.requests_seen += max(int(batch_size), 1)
        hit = self._window_hits("predict_slow", start, max(int(batch_size), 1))
        if hit is not None:
            self._note(hit, start)
            time.sleep(hit.duration_s)
        hit = self._window_hits("predict_hang", start, max(int(batch_size), 1))
        if hit is not None:
            self._note(hit, start)
            # Stay alive but unresponsive: the worker thread serving this
            # batch sleeps through the hang window; only attempt timeouts
            # or health probes can notice.
            deadline = time.monotonic() + hit.duration_s
            while time.monotonic() < deadline:
                time.sleep(0.01)
        hit = self._window_hits("predict_crash", start, max(int(batch_size), 1))
        if hit is not None:
            self._note(hit, start)
            raise InjectedFault(
                f"injected predict crash on replica {hit.replica} "
                f"at request {start}"
            )

    def on_checkpoint_load(self, version: str) -> None:
        """Fire any planned checkpoint-load failure for this attempt."""
        with self._lock:
            attempt = self.loads_seen
            self.loads_seen += 1
        hit = self._window_hits("checkpoint_load_fail", attempt, 1)
        if hit is not None:
            self._note(hit, attempt)
            raise InjectedFault(
                f"injected checkpoint load failure on replica {hit.replica} "
                f"for version {version} (attempt {attempt})"
            )

    def _note(self, spec: ServingFaultSpec, coordinate: int) -> None:
        with self._lock:
            self.fired.append(f"{spec.kind}@{coordinate}")


# ----------------------------------------------------------------------
# Storage-level fault helpers
# ----------------------------------------------------------------------
def tear_checkpoint(path: str | Path, keep_bytes: int = 128) -> Path:
    """Truncate a checkpoint's array payload, simulating a torn write.

    The manifest (and its recorded SHA-256) is left intact, so loading the
    checkpoint must fail the checksum — exactly what a crash between the
    payload write and the directory rename can leave behind on filesystems
    without atomic rename, or what bit rot produces later.
    """
    path = Path(path)
    arrays = path / "arrays.npz"
    if not arrays.is_file():
        raise FileNotFoundError(f"no arrays.npz under {path}")
    payload = arrays.read_bytes()
    arrays.write_bytes(payload[: min(keep_bytes, max(len(payload) - 1, 0))])
    return path


def corrupt_shared_array(array: np.ndarray, fraction: float = 0.25, seed: int = 0) -> int:
    """Overwrite a deterministic slice of ``array`` with NaNs.

    Models a corrupted shared-memory block (bad DIMM, stray writer).  Only
    meaningful for float arrays; returns the number of elements poisoned.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    flat = array.reshape(-1)
    count = max(1, int(flat.size * fraction))
    rng = np.random.default_rng(seed)
    index = rng.choice(flat.size, size=count, replace=False)
    flat[index] = np.nan
    return count
