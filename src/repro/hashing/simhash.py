"""SimHash — signed random projections for cosine similarity.

This follows the paper's implementation notes (Section 3.2 and Appendix A):

* projection vectors have components in ``{+1, 0, -1}`` so hashing needs
  additions only, not multiplications;
* the projections are *sparse* (by default only one third of the coordinates
  are non-zero), which cuts the per-hash work from ``d`` to ``d/3``;
* hash codes of a vector can be updated *incrementally* when only ``d' << d``
  coordinates of the vector change, because the projections ``w.T x`` are
  memoised (Section 4.2, item 3).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashCodes, LSHFamily, VectorLike
from repro.types import FloatArray, IntArray, SparseVector
from repro.utils.rng import derive_rng

__all__ = ["SimHash"]


class SimHash(LSHFamily):
    """Sparse signed-random-projection hashing.

    Parameters
    ----------
    input_dim:
        Dimensionality of the vectors being hashed.
    k, l:
        ``K`` elementary codes per table, ``L`` tables.
    sparsity:
        Fraction of non-zero coordinates per projection vector.
    seed:
        Seed for generating the (fixed) random projections.
    """

    def __init__(
        self,
        input_dim: int,
        k: int,
        l: int,
        sparsity: float = 1.0 / 3.0,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        if not 0.0 < sparsity <= 1.0:
            raise ValueError("sparsity must lie in (0, 1]")
        self.sparsity = float(sparsity)
        rng = derive_rng(seed, stream=101)

        total = k * l
        nnz = max(1, int(round(input_dim * sparsity)))
        self._nnz = nnz
        # ``(total, nnz)`` non-zero coordinate indices of each projection and
        # the matching signs.  Stored separately so a projection is a gather
        # plus a signed sum — additions only.
        self._proj_indices = np.empty((total, nnz), dtype=np.int64)
        for row in range(total):
            self._proj_indices[row] = rng.choice(input_dim, size=nnz, replace=False)
        self._proj_signs = rng.choice(np.array([-1.0, 1.0]), size=(total, nnz))

        # Dense ``(input_dim, total)`` projection matrix used for the
        # vectorised matrix path (hashing all neurons of a layer at once).
        dense = np.zeros((input_dim, total), dtype=np.float64)
        rows = self._proj_indices.reshape(-1)
        cols = np.repeat(np.arange(total), nnz)
        dense[rows, cols] = self._proj_signs.reshape(-1)
        self._dense_projection = dense

    # ------------------------------------------------------------------
    # LSHFamily interface
    # ------------------------------------------------------------------
    @property
    def code_cardinality(self) -> int:
        return 2

    def hash_vector(self, vector: VectorLike) -> HashCodes:
        projections = self.project(vector)
        return (projections > 0).astype(np.int64).reshape(self.l, self.k)

    def hash_matrix(self, matrix: FloatArray) -> HashCodes:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise ValueError("hash_matrix expects shape (rows, input_dim)")
        projections = matrix @ self._dense_projection
        codes = (projections > 0).astype(np.int64)
        return codes.reshape(matrix.shape[0], self.l, self.k)

    # ------------------------------------------------------------------
    # Projections and incremental updates
    # ------------------------------------------------------------------
    def project(self, vector: VectorLike) -> FloatArray:
        """Return the ``K*L`` signed projections ``w_i . x``."""
        if isinstance(vector, SparseVector):
            sparse = self._as_sparse(vector)
            # Sparse path: iterate over the (few) non-zero input coordinates.
            dense = np.zeros(self.input_dim, dtype=np.float64)
            dense[sparse.indices] = sparse.values
            gathered = dense[self._proj_indices]
            return np.sum(gathered * self._proj_signs, axis=1)
        dense = self._as_dense(vector)
        gathered = dense[self._proj_indices]
        return np.sum(gathered * self._proj_signs, axis=1)

    def codes_from_projections(self, projections: FloatArray) -> HashCodes:
        """Convert memoised projections into ``(L, K)`` elementary codes."""
        projections = np.asarray(projections, dtype=np.float64)
        if projections.shape[0] != self.k * self.l:
            raise ValueError("projections must have length K*L")
        return (projections > 0).astype(np.int64).reshape(self.l, self.k)

    def update_projections(
        self,
        projections: FloatArray,
        changed_indices: IntArray,
        deltas: FloatArray,
    ) -> FloatArray:
        """Incrementally update memoised projections after a sparse change.

        Given the previous projections of a vector ``x`` and a sparse update
        ``x[changed_indices] += deltas``, return the projections of the new
        vector in ``O(d' * K * L * sparsity)`` additions instead of a full
        re-projection.  This implements the memoisation trick from
        Section 4.2.
        """
        projections = np.array(projections, dtype=np.float64, copy=True)
        changed_indices = np.asarray(changed_indices, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)
        if changed_indices.shape != deltas.shape:
            raise ValueError("changed_indices and deltas must align")
        if changed_indices.size == 0:
            return projections
        # Scatter the delta into a sparse correction and apply it through the
        # dense projection matrix restricted to the changed rows.
        correction = self._dense_projection[changed_indices].T @ deltas
        projections += correction
        return projections

    @property
    def projection_nnz(self) -> int:
        """Number of non-zero coordinates per projection vector."""
        return self._nnz
