"""LSH hash families supported by SLIDE (paper Section 3.2 and Appendix A).

The package exposes a uniform interface (:class:`~repro.hashing.base.LSHFamily`)
over five families:

* :class:`~repro.hashing.simhash.SimHash` — signed random projections for
  cosine similarity, with the sparse-projection and incremental-rehash
  optimisations described in the paper.
* :class:`~repro.hashing.wta.WTAHash` — Winner-Take-All hashing for rank
  correlation.
* :class:`~repro.hashing.dwta.DWTAHash` — Densified WTA for sparse inputs.
* :class:`~repro.hashing.doph.DOPH` — densified one-permutation minwise
  hashing over binarised (top-k thresholded) inputs.
* :class:`~repro.hashing.minhash.MinHash` — classic minwise hashing baseline.
"""

from repro.hashing.base import LSHFamily, HashCodes
from repro.hashing.simhash import SimHash
from repro.hashing.wta import WTAHash
from repro.hashing.dwta import DWTAHash
from repro.hashing.doph import DOPH
from repro.hashing.minhash import MinHash
from repro.hashing.collision import (
    simhash_collision_probability,
    meta_collision_probability,
    retrieval_probability,
)
from repro.hashing.factory import make_hash_family

__all__ = [
    "LSHFamily",
    "HashCodes",
    "SimHash",
    "WTAHash",
    "DWTAHash",
    "DOPH",
    "MinHash",
    "simhash_collision_probability",
    "meta_collision_probability",
    "retrieval_probability",
    "make_hash_family",
]
