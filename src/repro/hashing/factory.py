"""Factory mapping :class:`~repro.config.LSHConfig` to a hash-family instance.

SLIDE "provides the interface to add customized hash functions based on need"
(Section 3.2); :func:`register_hash_family` exposes the same extension point.
"""

from __future__ import annotations

from typing import Callable

from repro.config import LSHConfig
from repro.hashing.base import LSHFamily
from repro.hashing.doph import DOPH
from repro.hashing.dwta import DWTAHash
from repro.hashing.minhash import MinHash
from repro.hashing.simhash import SimHash
from repro.hashing.wta import WTAHash

__all__ = ["make_hash_family", "register_hash_family", "available_hash_families"]

# A builder receives (input_dim, config, seed) and returns an LSHFamily.
HashFamilyBuilder = Callable[[int, LSHConfig, int], LSHFamily]


def _build_simhash(input_dim: int, config: LSHConfig, seed: int) -> LSHFamily:
    return SimHash(
        input_dim=input_dim,
        k=config.k,
        l=config.l,
        sparsity=config.simhash_sparsity,
        seed=seed,
    )


def _build_wta(input_dim: int, config: LSHConfig, seed: int) -> LSHFamily:
    return WTAHash(
        input_dim=input_dim,
        k=config.k,
        l=config.l,
        bin_size=config.wta_bin_size,
        seed=seed,
    )


def _build_dwta(input_dim: int, config: LSHConfig, seed: int) -> LSHFamily:
    return DWTAHash(
        input_dim=input_dim,
        k=config.k,
        l=config.l,
        bin_size=config.wta_bin_size,
        seed=seed,
    )


def _build_doph(input_dim: int, config: LSHConfig, seed: int) -> LSHFamily:
    return DOPH(
        input_dim=input_dim,
        k=config.k,
        l=config.l,
        top_k=config.doph_top_k,
        seed=seed,
    )


def _build_minhash(input_dim: int, config: LSHConfig, seed: int) -> LSHFamily:
    return MinHash(input_dim=input_dim, k=config.k, l=config.l, seed=seed)


_REGISTRY: dict[str, HashFamilyBuilder] = {
    "simhash": _build_simhash,
    "wta": _build_wta,
    "dwta": _build_dwta,
    "doph": _build_doph,
    "minhash": _build_minhash,
}


def register_hash_family(name: str, builder: HashFamilyBuilder) -> None:
    """Register a custom hash-family builder under ``name``.

    The builder is called as ``builder(input_dim, lsh_config, seed)`` and must
    return an :class:`~repro.hashing.base.LSHFamily` subclass instance.
    """
    if not name or not isinstance(name, str):
        raise ValueError("name must be a non-empty string")
    _REGISTRY[name.lower()] = builder


def available_hash_families() -> tuple[str, ...]:
    """Names currently accepted by :func:`make_hash_family`."""
    return tuple(sorted(_REGISTRY))


def make_hash_family(input_dim: int, config: LSHConfig, seed: int = 0) -> LSHFamily:
    """Instantiate the hash family described by ``config``."""
    try:
        builder = _REGISTRY[config.hash_family.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown hash family {config.hash_family!r}; "
            f"available: {', '.join(available_hash_families())}"
        ) from exc
    return builder(input_dim, config, seed)
