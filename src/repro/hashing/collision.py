"""Theoretical collision and retrieval probabilities for LSH families.

These closed-form expressions back the paper's Equations (2) and (3) and
Figure 11, and are used by the property-based tests as ground truth for the
empirical collision rates of the hash-family implementations.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

from repro.utils.validation import check_probability

__all__ = [
    "simhash_collision_probability",
    "meta_collision_probability",
    "retrieval_probability",
    "vanilla_selection_probability",
    "hard_threshold_selection_probability",
]


def simhash_collision_probability(cosine_similarity: float) -> float:
    """Collision probability of one SimHash bit for a given cosine similarity.

    ``p = 1 - arccos(sim) / pi`` — Equation in Appendix B of the paper.
    """
    sim = float(np.clip(cosine_similarity, -1.0, 1.0))
    return 1.0 - float(np.arccos(sim)) / np.pi


def meta_collision_probability(p: float, k: int) -> float:
    """Probability that all ``K`` elementary codes agree: ``p ** K``."""
    check_probability(p, "p")
    if k <= 0:
        raise ValueError("k must be positive")
    return float(p) ** k


def retrieval_probability(p: float, k: int, l: int) -> float:
    """Probability that an item is retrieved from at least one of ``L`` tables.

    ``1 - (1 - p^K)^L`` — the classic LSH sampling probability (Section 2.1).
    """
    check_probability(p, "p")
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    return 1.0 - (1.0 - p**k) ** l


def vanilla_selection_probability(p: float, k: int, l: int, tau: int) -> float:
    """Equation (2): probability a neuron is selected by Vanilla sampling.

    ``Pr = (p^K)^tau * (1 - p^K)^(L - tau)`` where ``tau`` is the number of
    tables actually probed.
    """
    check_probability(p, "p")
    if not 0 <= tau <= l:
        raise ValueError("tau must lie in [0, L]")
    pk = p**k
    return float(pk**tau * (1.0 - pk) ** (l - tau))


def hard_threshold_selection_probability(p: float, k: int, l: int, m: int) -> float:
    """Equation (3): probability a neuron appears in at least ``m`` buckets.

    ``Pr = sum_{i=m}^{L} C(L, i) (p^K)^i (1 - p^K)^(L-i)`` — the binomial
    upper tail, evaluated with scipy's survival function for stability.
    """
    check_probability(p, "p")
    if not 1 <= m <= l:
        raise ValueError("m must lie in [1, L]")
    pk = p**k
    # P(X >= m) for X ~ Binomial(L, pk)
    return float(binom.sf(m - 1, l, pk))
