"""Densified Winner-Take-All (DWTA) hashing (Chen & Shrivastava, 2018).

WTA hashing degrades on very sparse inputs because most bins see only zero
coordinates and therefore carry no information.  DWTA fixes this in two ways
(Appendix A):

1. it loops over the *non-zero* coordinates of the input only, so hashing
   costs ``O(nnz * K * L * m / d)`` instead of ``O(K * L * m)``;
2. *empty* bins borrow the code of a non-empty bin chosen by a fixed
   pseudo-random probing sequence ("densification"), which restores the LSH
   property for sparse vectors.
"""

from __future__ import annotations

import numpy as np

from math import gcd

from repro.hashing.base import HashCodes, LSHFamily, VectorLike
from repro.hashing.densify import densify_codes_batch
from repro.types import FloatArray, SparseVector
from repro.utils.rng import derive_rng

__all__ = ["DWTAHash"]


def _coprime_offsets(rng: np.random.Generator, total: int) -> np.ndarray:
    """Random ring-walk step sizes, each coprime with ``total``.

    A step coprime with the ring size visits every position, which guarantees
    the densification probe always finds a filled bin when one exists.
    """
    if total <= 1:
        return np.ones(max(total, 1), dtype=np.int64)
    offsets = np.empty(total, dtype=np.int64)
    for idx in range(total):
        step = int(rng.integers(1, total))
        while gcd(step, total) != 1:
            step = step % total + 1
        offsets[idx] = step
    return offsets


class DWTAHash(LSHFamily):
    """Densified WTA hashing for sparse inputs."""

    def __init__(
        self,
        input_dim: int,
        k: int,
        l: int,
        bin_size: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        if bin_size < 2:
            raise ValueError("bin_size must be at least 2")
        self.bin_size = int(min(bin_size, input_dim))
        rng = derive_rng(seed, stream=303)

        total_codes = k * l
        bins_per_perm = max(1, input_dim // self.bin_size)
        n_perms = int(np.ceil(total_codes / bins_per_perm))
        perms = np.stack([rng.permutation(input_dim) for _ in range(n_perms)])
        usable = bins_per_perm * self.bin_size
        bins = perms[:, :usable].reshape(n_perms * bins_per_perm, self.bin_size)
        self._bins = bins[:total_codes]

        # Bin positions reordered by ascending coordinate id.  The per-vector
        # path iterates coordinates in ascending order with a strict ``>``
        # comparison, so ties resolve to the smallest coordinate; gathering in
        # this order lets the batched path's ``argmax`` (first maximum wins)
        # reproduce that tie-break exactly.
        self._bin_coord_order = np.argsort(self._bins, axis=1, kind="stable")
        self._bins_by_coord = np.take_along_axis(
            self._bins, self._bin_coord_order, axis=1
        )

        # Inverse mapping: coordinate -> list of (code_index, position) pairs.
        # Stored as flat arrays for cheap gathering in the sparse path.
        coord_to_codes: list[list[tuple[int, int]]] = [[] for _ in range(input_dim)]
        for code_idx in range(total_codes):
            for pos in range(self.bin_size):
                coord = int(self._bins[code_idx, pos])
                coord_to_codes[coord].append((code_idx, pos))
        self._coord_map = coord_to_codes

        # Densification probing sequence: for each code index, a fixed random
        # step size used to walk the ring of bins.  Steps are forced coprime
        # with the ring size so the walk visits every bin and densification
        # always terminates at a filled one.
        self._probe_offsets = _coprime_offsets(rng, total_codes)
        self._total_codes = total_codes

    @property
    def code_cardinality(self) -> int:
        # +1 accounts for the sentinel "empty after densification" value.
        return self.bin_size + 1

    def hash_vector(self, vector: VectorLike) -> HashCodes:
        sparse = self._as_sparse(vector)
        codes, filled = self._raw_codes(sparse)
        codes = self._densify(codes, filled)
        return codes.reshape(self.l, self.k)

    # Rows hashed per chunk: bounds the (chunk, K*L, bin_size) gather
    # temporaries to tens of MB even for paper-scale neuron counts.
    _CHUNK_ROWS = 1024

    def hash_matrix(self, matrix: FloatArray) -> HashCodes:
        """Vectorised batch hashing: one gather/reduce sweep per row chunk.

        Agrees bin-for-bin with mapping :meth:`hash_vector` over the rows;
        zero coordinates are excluded from the winner search exactly as the
        sparse per-vector path excludes them.  Rows are processed in fixed
        chunks so the ``(rows, K*L, bin_size)`` gather never materialises
        for a full 100K+-neuron weight matrix at once.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise ValueError("hash_matrix expects shape (rows, input_dim)")
        out = np.empty((matrix.shape[0], self.l, self.k), dtype=np.int64)
        for start in range(0, matrix.shape[0], self._CHUNK_ROWS):
            chunk = matrix[start : start + self._CHUNK_ROWS]
            out[start : start + self._CHUNK_ROWS] = self._hash_chunk(chunk)
        return out

    def _hash_chunk(self, chunk: FloatArray) -> HashCodes:
        total = self._total_codes
        # (chunk, total, bin_size) values at each bin's coordinates, with
        # exact zeros masked out of contention.
        gathered = chunk[:, self._bins_by_coord]
        masked = np.where(gathered != 0.0, gathered, -np.inf)
        best = masked.max(axis=2)
        filled = best > -np.inf
        winner = masked.argmax(axis=2)
        codes = self._bin_coord_order[np.arange(total)[None, :], winner]
        codes = np.where(filled, codes, 0)
        codes = densify_codes_batch(codes, filled, self._probe_offsets, self.bin_size)
        return codes.reshape(chunk.shape[0], self.l, self.k)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _raw_codes(self, sparse: SparseVector) -> tuple[np.ndarray, np.ndarray]:
        """Winner positions per bin considering only non-zero coordinates."""
        total = self._total_codes
        best_value = np.full(total, -np.inf, dtype=np.float64)
        codes = np.zeros(total, dtype=np.int64)
        filled = np.zeros(total, dtype=bool)
        for coord, value in zip(sparse.indices, sparse.values):
            for code_idx, pos in self._coord_map[int(coord)]:
                if value > best_value[code_idx]:
                    best_value[code_idx] = value
                    codes[code_idx] = pos
                    filled[code_idx] = True
        return codes, filled

    def _densify(self, codes: np.ndarray, filled: np.ndarray) -> np.ndarray:
        """Fill empty bins by probing other bins with a fixed random offset."""
        if filled.all():
            return codes
        if not filled.any():
            # Degenerate all-zero input: return the sentinel code everywhere.
            return np.full_like(codes, self.bin_size)
        total = self._total_codes
        densified = codes.copy()
        for code_idx in np.flatnonzero(~filled):
            probe = code_idx
            offset = int(self._probe_offsets[code_idx])
            # Bounded probing: at most ``total`` hops (guaranteed to terminate
            # because at least one bin is filled and offsets cycle the ring).
            for attempt in range(1, total + 1):
                probe = (code_idx + attempt * offset) % total
                if filled[probe]:
                    densified[code_idx] = codes[probe]
                    break
            else:  # pragma: no cover - unreachable given filled.any()
                densified[code_idx] = self.bin_size
        return densified

    @property
    def bins(self) -> np.ndarray:
        """The ``(K*L, bin_size)`` coordinate bins (read-only view)."""
        return self._bins
