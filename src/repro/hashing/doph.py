"""Densified One Permutation Hashing (DOPH) with top-k binarisation.

Appendix A: DOPH is designed for binary inputs; neuron weight vectors are not
binary, so SLIDE first thresholds the input — the ``k`` largest coordinates
become 1 and the rest 0 — then applies one-permutation minwise hashing with
densification (Shrivastava & Li, 2014b).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashCodes, LSHFamily, VectorLike
from repro.hashing.densify import densify_codes_batch
from repro.hashing.dwta import _coprime_offsets
from repro.types import FloatArray, SparseVector
from repro.utils.rng import derive_rng
from repro.utils.topk import top_k_indices

__all__ = ["DOPH"]


class DOPH(LSHFamily):
    """Densified one-permutation minwise hashing over thresholded inputs.

    Parameters
    ----------
    top_k:
        Number of largest-magnitude coordinates retained by the binarisation
        threshold (``idx_k`` in the paper's notation).
    """

    def __init__(
        self,
        input_dim: int,
        k: int,
        l: int,
        top_k: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.top_k = int(min(top_k, input_dim))
        rng = derive_rng(seed, stream=505)

        total = k * l
        self._total = total
        # One global permutation of the coordinates, split into ``total`` bins.
        self._permutation = rng.permutation(input_dim)
        # bin id of each permuted position
        self._bin_of_position = np.minimum(
            np.arange(input_dim) * total // max(input_dim, 1), total - 1
        )
        # position of each coordinate inside the permutation
        self._position_of_coord = np.empty(input_dim, dtype=np.int64)
        self._position_of_coord[self._permutation] = np.arange(input_dim)
        # densification probing offsets (coprime with the ring size so the
        # walk is guaranteed to reach a filled bin when one exists)
        self._probe_offsets = _coprime_offsets(rng, total)
        # bin sizes vary by at most 1; code cardinality is the largest bin + sentinel
        bin_counts = np.bincount(self._bin_of_position, minlength=total)
        self._max_bin = int(bin_counts.max())
        # offset of the first position of each bin, so codes are local positions
        self._bin_start = np.zeros(total, dtype=np.int64)
        np.cumsum(bin_counts[:-1], out=self._bin_start[1:])

    @property
    def code_cardinality(self) -> int:
        return self._max_bin + 1

    # ------------------------------------------------------------------
    def binarise(self, vector: VectorLike) -> np.ndarray:
        """Indices of the coordinates kept by the top-k threshold."""
        if isinstance(vector, SparseVector):
            sparse = self._as_sparse(vector)
            if sparse.nnz <= self.top_k:
                return np.array(sparse.indices, dtype=np.int64)
            keep = top_k_indices(sparse.values, self.top_k)
            return np.asarray(sparse.indices[keep], dtype=np.int64)
        dense = self._as_dense(vector)
        keep = top_k_indices(dense, self.top_k)
        # Drop exact zeros so an all-zero vector produces an empty support.
        keep = keep[dense[keep] != 0]
        return keep.astype(np.int64)

    def hash_vector(self, vector: VectorLike) -> HashCodes:
        support = self.binarise(vector)
        total = self._total
        codes = np.full(total, self._max_bin, dtype=np.int64)
        filled = np.zeros(total, dtype=bool)
        if support.size:
            positions = self._position_of_coord[support]
            bins = self._bin_of_position[positions]
            local = positions - self._bin_start[bins]
            # minwise: keep the smallest local position per bin
            order = np.argsort(local)
            for idx in order[::-1]:
                codes[bins[idx]] = local[idx]
                filled[bins[idx]] = True
        codes = self._densify(codes, filled)
        return codes.reshape(self.l, self.k)

    # Rows hashed per chunk: bounds the boolean keep-mask and the flat
    # scatter-min temporaries for paper-scale neuron counts.
    _CHUNK_ROWS = 1024

    def hash_matrix(self, matrix: FloatArray) -> HashCodes:
        """Vectorised batch hashing over the rows of a dense matrix.

        Binarisation (top-k threshold, zeros dropped), minwise reduction and
        densification all run as whole-chunk array operations; agreement
        with the per-vector path holds wherever the top-k threshold is
        untied.  Rows are processed in fixed chunks to bound temporaries.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise ValueError("hash_matrix expects shape (rows, input_dim)")
        out = np.empty((matrix.shape[0], self.l, self.k), dtype=np.int64)
        for start in range(0, matrix.shape[0], self._CHUNK_ROWS):
            chunk = matrix[start : start + self._CHUNK_ROWS]
            out[start : start + self._CHUNK_ROWS] = self._hash_chunk(chunk)
        return out

    def _hash_chunk(self, matrix: FloatArray) -> HashCodes:
        rows, total = matrix.shape[0], self._total
        keep = np.zeros(matrix.shape, dtype=bool)
        if self.top_k >= self.input_dim:
            keep[:] = True
        else:
            part = np.argpartition(matrix, -self.top_k, axis=1)[:, -self.top_k :]
            np.put_along_axis(keep, part, True, axis=1)
        keep &= matrix != 0.0

        kept_row, kept_coord = np.nonzero(keep)
        positions = self._position_of_coord[kept_coord]
        bins = self._bin_of_position[positions]
        local = positions - self._bin_start[bins]
        # Minwise per (row, bin): scatter-min of the local positions.
        min_local = np.full(rows * total, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(min_local, kept_row * total + bins, local)
        min_local = min_local.reshape(rows, total)
        filled = min_local != np.iinfo(np.int64).max
        codes = np.where(filled, min_local, self._max_bin)
        codes = densify_codes_batch(codes, filled, self._probe_offsets, self._max_bin)
        return codes.reshape(rows, self.l, self.k)

    def _densify(self, codes: np.ndarray, filled: np.ndarray) -> np.ndarray:
        if filled.all() or not filled.any():
            return codes
        total = self._total
        densified = codes.copy()
        for code_idx in np.flatnonzero(~filled):
            offset = int(self._probe_offsets[code_idx])
            for attempt in range(1, total + 1):
                probe = (code_idx + attempt * offset) % total
                if filled[probe]:
                    densified[code_idx] = codes[probe]
                    break
        return densified
