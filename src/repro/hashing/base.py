"""Abstract interface shared by all LSH hash families.

A hash family produces, for an input vector, ``K * L`` elementary integer
hash codes.  The LSH index (:mod:`repro.lsh`) groups each consecutive run of
``K`` codes into one *meta* hash — the bucket fingerprint of one table — so a
family only needs to map a vector to a ``(L, K)`` integer array.

Inputs may be dense (``numpy.ndarray``) or sparse
(:class:`repro.types.SparseVector`); every family must accept both because
SLIDE hashes *layer inputs* (sparse data or sparse activations) as well as
*neuron weight vectors* (dense rows of the weight matrix).
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro.types import FloatArray, IntArray, SparseVector

__all__ = ["LSHFamily", "HashCodes", "VectorLike"]

# The ``(L, K)`` array of elementary hash codes for one input vector.
HashCodes = IntArray

VectorLike = Union[FloatArray, SparseVector]


class LSHFamily(abc.ABC):
    """Base class for ``(K, L)``-parameterised LSH hash families."""

    def __init__(self, input_dim: int, k: int, l: int, seed: int = 0) -> None:
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if k <= 0 or l <= 0:
            raise ValueError("k and l must be positive")
        self.input_dim = int(input_dim)
        self.k = int(k)
        self.l = int(l)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def hash_vector(self, vector: VectorLike) -> HashCodes:
        """Return the ``(L, K)`` array of elementary codes for one vector."""

    @property
    @abc.abstractmethod
    def code_cardinality(self) -> int:
        """Number of distinct values an elementary code can take.

        Used by the LSH table to pack ``K`` elementary codes into a single
        bucket fingerprint without collisions between distinct code tuples.
        """

    # ------------------------------------------------------------------
    # Conveniences shared by all families
    # ------------------------------------------------------------------
    def hash_matrix(self, matrix: FloatArray) -> HashCodes:
        """Hash each row of a dense matrix; returns ``(rows, L, K)``.

        Subclasses override this when a vectorised implementation is
        available (SimHash does); the default simply loops over rows.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("hash_matrix expects a 2-D array")
        codes = np.empty((matrix.shape[0], self.l, self.k), dtype=np.int64)
        for row in range(matrix.shape[0]):
            codes[row] = self.hash_vector(matrix[row])
        return codes

    def _as_dense(self, vector: VectorLike) -> FloatArray:
        """Densify the input (helper for families without sparse fast paths)."""
        if isinstance(vector, SparseVector):
            if vector.dimension != self.input_dim:
                raise ValueError(
                    f"vector dimension {vector.dimension} does not match "
                    f"hash family input_dim {self.input_dim}"
                )
            return vector.to_dense()
        dense = np.asarray(vector, dtype=np.float64)
        if dense.shape[0] != self.input_dim:
            raise ValueError(
                f"vector dimension {dense.shape[0]} does not match "
                f"hash family input_dim {self.input_dim}"
            )
        return dense

    def _as_sparse(self, vector: VectorLike) -> SparseVector:
        """View the input as a :class:`SparseVector` (helper for sparse paths)."""
        if isinstance(vector, SparseVector):
            if vector.dimension != self.input_dim:
                raise ValueError(
                    f"vector dimension {vector.dimension} does not match "
                    f"hash family input_dim {self.input_dim}"
                )
            return vector
        dense = np.asarray(vector, dtype=np.float64)
        if dense.shape[0] != self.input_dim:
            raise ValueError(
                f"vector dimension {dense.shape[0]} does not match "
                f"hash family input_dim {self.input_dim}"
            )
        return SparseVector.from_dense(dense)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(input_dim={self.input_dim}, "
            f"k={self.k}, l={self.l}, seed={self.seed})"
        )
