"""Classic MinHash over the support (set of non-zero indices) of a vector.

MinHash is the LSH family for Jaccard similarity.  SLIDE lists Minhash among
its supported families; it is applicable when both the data and the neuron
weights are treated as *sets* (binary vectors).  We binarise real-valued
vectors by taking their support.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashCodes, LSHFamily, VectorLike
from repro.utils.rng import derive_rng

__all__ = ["MinHash"]

# A large Mersenne prime keeps the universal hash family well distributed
# while staying inside int64 multiplication without overflow for d < 2^30.
_MERSENNE_PRIME = (1 << 61) - 1


class MinHash(LSHFamily):
    """Minwise hashing of the support of a vector using universal hashing.

    Each elementary hash is ``min over support of ((a*i + b) mod p) mod range``
    for random ``a``, ``b`` — the standard permutation-free approximation of
    MinHash.
    """

    def __init__(
        self,
        input_dim: int,
        k: int,
        l: int,
        code_range: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        if code_range < 2:
            raise ValueError("code_range must be at least 2")
        self.code_range = int(code_range)
        rng = derive_rng(seed, stream=404)
        total = k * l
        self._a = rng.integers(1, _MERSENNE_PRIME, size=total, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=total, dtype=np.int64)

    @property
    def code_cardinality(self) -> int:
        return self.code_range

    def hash_vector(self, vector: VectorLike) -> HashCodes:
        sparse = self._as_sparse(vector)
        support = sparse.indices
        if support.size == 0:
            # Empty vectors map to a fixed sentinel bucket.
            return np.zeros((self.l, self.k), dtype=np.int64)
        # (total, nnz) universal hash values; object dtype avoided by staying
        # in python ints only implicitly -- int64 is fine for d < 2^30.
        hashed = (
            self._a[:, None] * support[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        min_hash = hashed.min(axis=1)
        codes = (min_hash % self.code_range).astype(np.int64)
        return codes.reshape(self.l, self.k)
