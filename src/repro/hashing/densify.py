"""Batched densification shared by the DWTA and DOPH hash families.

Densification (Shrivastava & Li, 2014b) fills an *empty* bin with the code of
a non-empty bin reached by a fixed pseudo-random ring walk.  The per-vector
implementations in :mod:`repro.hashing.dwta` / :mod:`repro.hashing.doph` walk
one empty bin at a time; for a batch of vectors that Python loop dominates
hashing cost because sparse inputs leave most bins empty.

:func:`densify_codes_batch` runs the identical walk for *every* empty bin of
*every* row simultaneously: iteration ``t`` probes ``(bin + t * offset) %
total`` for all still-unresolved (row, bin) pairs at once, retiring the pairs
whose probe landed on a filled bin.  The probe sequence matches the
per-vector ``_densify`` implementations exactly, so batched and per-vector
codes agree bin-for-bin.
"""

from __future__ import annotations

import numpy as np

from repro.types import IntArray

__all__ = ["densify_codes_batch"]


def densify_codes_batch(
    codes: IntArray,
    filled: np.ndarray,
    probe_offsets: IntArray,
    sentinel: int,
) -> IntArray:
    """Densify a ``(rows, total)`` code matrix in vectorised ring walks.

    Parameters
    ----------
    codes:
        Raw winner codes per (row, bin); entries where ``filled`` is False
        are ignored and overwritten.
    filled:
        Boolean matrix marking bins that saw at least one input coordinate.
    probe_offsets:
        Per-bin ring-walk step sizes, each coprime with ``total`` so the walk
        visits every bin.
    sentinel:
        Code assigned to every bin of a row with *no* filled bins (the
        degenerate all-zero input).
    """
    codes = np.asarray(codes, dtype=np.int64)
    filled = np.asarray(filled, dtype=bool)
    if codes.shape != filled.shape or codes.ndim != 2:
        raise ValueError("codes and filled must be matching 2-D arrays")
    total = codes.shape[1]
    densified = codes.copy()

    empty_rows = ~filled.any(axis=1)
    if empty_rows.any():
        densified[empty_rows] = sentinel

    todo_row, todo_bin = np.nonzero(~filled & ~empty_rows[:, None])
    if todo_row.size == 0:
        return densified
    offsets = probe_offsets[todo_bin]
    for attempt in range(1, total + 1):
        probe = (todo_bin + attempt * offsets) % total
        hit = filled[todo_row, probe]
        if hit.any():
            densified[todo_row[hit], todo_bin[hit]] = codes[todo_row[hit], probe[hit]]
            miss = ~hit
            todo_row, todo_bin, offsets = todo_row[miss], todo_bin[miss], offsets[miss]
            if todo_row.size == 0:
                break
    return densified
