"""Winner-Take-All (WTA) hashing (Yagnik et al., 2011).

Following Appendix A, SLIDE's memory-optimised variant generates
``ceil(K * L * m / d)`` full permutations of ``[0, d)`` instead of ``K * L``
of them; each permutation is split into ``d / m`` bins of size ``m`` and each
bin yields one elementary hash code: the *position within the bin* of the
maximum input coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashCodes, LSHFamily, VectorLike
from repro.types import FloatArray
from repro.utils.rng import derive_rng

__all__ = ["WTAHash"]


class WTAHash(LSHFamily):
    """Winner-take-all hashing over dense inputs.

    Parameters
    ----------
    bin_size:
        ``m`` — the number of coordinates examined per elementary code.
    """

    def __init__(
        self,
        input_dim: int,
        k: int,
        l: int,
        bin_size: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        if bin_size < 2:
            raise ValueError("bin_size must be at least 2")
        self.bin_size = int(min(bin_size, input_dim))
        rng = derive_rng(seed, stream=202)

        total_codes = k * l
        bins_per_perm = max(1, input_dim // self.bin_size)
        n_perms = int(np.ceil(total_codes / bins_per_perm))
        # Each permutation is a shuffled copy of [0, d); bins are consecutive
        # slices of length ``bin_size``.
        perms = np.stack([rng.permutation(input_dim) for _ in range(n_perms)])
        # Flatten all bins from all permutations and keep the first
        # ``total_codes`` of them, shaped (total_codes, bin_size).
        usable = bins_per_perm * self.bin_size
        bins = perms[:, :usable].reshape(n_perms * bins_per_perm, self.bin_size)
        self._bins = bins[:total_codes]

    @property
    def code_cardinality(self) -> int:
        return self.bin_size

    def hash_vector(self, vector: VectorLike) -> HashCodes:
        dense = self._as_dense(vector)
        gathered = dense[self._bins]
        codes = np.argmax(gathered, axis=1).astype(np.int64)
        return codes.reshape(self.l, self.k)

    def hash_matrix(self, matrix: FloatArray) -> HashCodes:
        """Vectorised batch hashing: one gather + argmax for all rows."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise ValueError("hash_matrix expects shape (rows, input_dim)")
        gathered = matrix[:, self._bins]
        codes = np.argmax(gathered, axis=2).astype(np.int64)
        return codes.reshape(matrix.shape[0], self.l, self.k)

    @property
    def bins(self) -> np.ndarray:
        """The ``(K*L, bin_size)`` coordinate bins (read-only view)."""
        return self._bins
