"""Dynamic micro-batching: coalesce single requests into engine batches.

Batched inference amortises per-request overhead (one hidden-layer matrix
multiply serves the whole batch), but a serving queue cannot wait forever
for a batch to fill.  :class:`MicroBatchQueue` implements the standard
two-knob policy used by production model servers:

* dispatch as soon as ``max_batch_size`` requests are queued, or
* dispatch whatever has accumulated once the oldest request has waited
  ``max_wait_ms`` milliseconds.

Workers call :meth:`MicroBatchQueue.next_batch` directly — each worker
assembles its own micro-batch, so there is no central dispatcher thread to
become a bottleneck, and blocked workers provide natural back-pressure via
the bounded queue.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.serving.errors import NotServingError, RejectedError
from repro.types import SparseExample
from repro.utils import sanitize

__all__ = ["InferenceRequest", "MicroBatchQueue"]

# Bounds on the Retry-After hint handed to shed clients: never so small the
# client hammers a saturated server, never so large a transient spike reads
# as an outage.
_MIN_RETRY_AFTER_S = 0.01
_MAX_RETRY_AFTER_S = 5.0


@dataclass
class InferenceRequest:
    """One queued prediction request awaiting a worker."""

    example: SparseExample
    k: int
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    # Per-request time budget (seconds, measured from enqueue); None means
    # the request waits indefinitely.
    deadline_s: float | None = None

    def latency(self) -> float:
        """Seconds since the request entered the queue."""
        return time.monotonic() - self.enqueued_at

    def expired(self) -> bool:
        """True once the request has outlived its deadline in the queue."""
        return self.deadline_s is not None and self.latency() > self.deadline_s


class MicroBatchQueue:
    """Bounded request queue with size- and deadline-triggered batching.

    ``policy`` selects the admission behaviour when the queue is full:
    ``"block"`` (the original back-pressure semantics — submit waits for
    space) or ``"shed"`` (submit fails fast with a typed
    :class:`~repro.serving.errors.RejectedError` carrying a retry-after
    derived from queue depth and the measured drain rate).
    """

    def __init__(
        self,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        capacity: int = 1024,
        policy: str = "block",
        drain_rate: Callable[[], float] | None = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in ("block", "shed"):
            raise ValueError("policy must be 'block' or 'shed'")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.policy = policy
        self._drain_rate = drain_rate
        self._queue: queue.Queue[InferenceRequest] = queue.Queue(maxsize=capacity)
        self._closed = False
        # Makes submit's closed-check-and-put atomic with close(): once
        # close() returns, no in-flight submit can still slip a request past
        # the workers' final drain (which would leave its future unresolved).
        self._submit_lock = sanitize.lock("serving.batching.submit")

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(
        self,
        example: SparseExample,
        k: int = 1,
        deadline_s: float | None = None,
    ) -> Future:
        """Enqueue a request; full-queue behaviour depends on ``policy``.

        The returned :class:`~concurrent.futures.Future` resolves to a
        :class:`~repro.serving.engine.Prediction` once a worker has served
        the batch containing this request.  Under the ``shed`` policy a full
        queue raises :class:`~repro.serving.errors.RejectedError` instead of
        blocking.
        """
        request = InferenceRequest(example=example, k=int(k), deadline_s=deadline_s)
        while True:
            # Never block on a full queue while holding the lock: that would
            # serialize all producers behind one stuck submitter and make
            # close() (and thus shutdown) wait on queue capacity.  Instead
            # try a non-blocking put under the lock and back off outside it —
            # producers blocked on capacity also notice close() this way.
            with self._submit_lock:
                if self._closed:
                    raise NotServingError("queue is closed")
                try:
                    self._queue.put_nowait(request)
                    return request.future
                except queue.Full:
                    if self.policy == "shed":
                        raise self._rejection()
            sanitize.note_blocking("MicroBatchQueue.submit capacity backoff")
            time.sleep(0.001)

    def _rejection(self) -> RejectedError:
        """Build the typed 429 for a full queue.

        Retry-after is the time the current backlog needs to drain at the
        measured completion rate — proportional backoff, so clients ease off
        harder the deeper the overload.
        """
        pending = self._queue.qsize()
        rate = self._drain_rate() if self._drain_rate is not None else 0.0
        retry_after = pending / max(rate, 1.0)
        retry_after = min(max(retry_after, _MIN_RETRY_AFTER_S), _MAX_RETRY_AFTER_S)
        return RejectedError(retry_after_s=retry_after, pending=pending)

    def close(self) -> None:
        """Stop accepting new requests (queued ones still drain)."""
        with self._submit_lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Approximate number of queued, not-yet-dispatched requests."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Consumer side (worker threads)
    # ------------------------------------------------------------------
    def next_batch(self, timeout: float | None = 0.1) -> list[InferenceRequest]:
        """Block for the next micro-batch.

        Waits up to ``timeout`` seconds for a first request (returning an
        empty list on timeout so callers can check for shutdown), then keeps
        gathering until the batch is full or ``max_wait_ms`` has elapsed
        since the *first* request of the batch was picked up.
        """
        try:
            first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Deadline passed: drain whatever is already queued, but do
                # not wait for more.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except queue.Empty:
                    break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch
