"""Dynamic micro-batching: coalesce single requests into engine batches.

Batched inference amortises per-request overhead (one hidden-layer matrix
multiply serves the whole batch), but a serving queue cannot wait forever
for a batch to fill.  :class:`MicroBatchQueue` implements the standard
two-knob policy used by production model servers:

* dispatch as soon as ``max_batch_size`` requests are queued, or
* dispatch whatever has accumulated once the oldest request has waited
  ``max_wait_ms`` milliseconds.

Workers call :meth:`MicroBatchQueue.next_batch` directly — each worker
assembles its own micro-batch, so there is no central dispatcher thread to
become a bottleneck, and blocked workers provide natural back-pressure via
the bounded queue.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.types import SparseExample

__all__ = ["InferenceRequest", "MicroBatchQueue"]


@dataclass
class InferenceRequest:
    """One queued prediction request awaiting a worker."""

    example: SparseExample
    k: int
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)

    def latency(self) -> float:
        """Seconds since the request entered the queue."""
        return time.monotonic() - self.enqueued_at


class MicroBatchQueue:
    """Bounded request queue with size- and deadline-triggered batching."""

    def __init__(
        self,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        capacity: int = 1024,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self._queue: queue.Queue[InferenceRequest] = queue.Queue(maxsize=capacity)
        self._closed = False
        # Makes submit's closed-check-and-put atomic with close(): once
        # close() returns, no in-flight submit can still slip a request past
        # the workers' final drain (which would leave its future unresolved).
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, example: SparseExample, k: int = 1) -> Future:
        """Enqueue a request; blocks when the queue is at capacity.

        The returned :class:`~concurrent.futures.Future` resolves to a
        :class:`~repro.serving.engine.Prediction` once a worker has served
        the batch containing this request.
        """
        request = InferenceRequest(example=example, k=int(k))
        while True:
            # Never block on a full queue while holding the lock: that would
            # serialize all producers behind one stuck submitter and make
            # close() (and thus shutdown) wait on queue capacity.  Instead
            # try a non-blocking put under the lock and back off outside it —
            # producers blocked on capacity also notice close() this way.
            with self._submit_lock:
                if self._closed:
                    raise RuntimeError("queue is closed")
                try:
                    self._queue.put_nowait(request)
                    return request.future
                except queue.Full:
                    pass
            time.sleep(0.001)

    def close(self) -> None:
        """Stop accepting new requests (queued ones still drain)."""
        with self._submit_lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Approximate number of queued, not-yet-dispatched requests."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Consumer side (worker threads)
    # ------------------------------------------------------------------
    def next_batch(self, timeout: float | None = 0.1) -> list[InferenceRequest]:
        """Block for the next micro-batch.

        Waits up to ``timeout`` seconds for a first request (returning an
        empty list on timeout so callers can check for shutdown), then keeps
        gathering until the batch is full or ``max_wait_ms`` has elapsed
        since the *first* request of the batch was picked up.
        """
        try:
            first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Deadline passed: drain whatever is already queued, but do
                # not wait for more.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except queue.Empty:
                    break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch
