"""Serving-side metrics: request latency quantiles, batch sizes, throughput.

Thin aggregation over the :mod:`repro.perf.latency` primitives.  One
:class:`ServingMetrics` instance is shared by every worker of an
:class:`~repro.serving.pool.EnginePool`; all recording paths are
thread-safe.

Latency is measured queue-to-completion: the clock starts when a request
enters the micro-batch queue and stops when its future is resolved, so the
reported p50/p95/p99 include queueing and batching delay — what a client
actually experiences — not just engine compute.
"""

from __future__ import annotations

import threading

from repro.perf.latency import LatencyHistogram, ThroughputMeter

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Aggregated counters for one serving runtime."""

    def __init__(self) -> None:
        self.request_latency = LatencyHistogram()
        self.throughput = ThroughputMeter()
        self._lock = threading.Lock()
        self._batches = 0
        self._batched_requests = 0
        self._errors = 0
        self._mode_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording (worker threads)
    # ------------------------------------------------------------------
    def record_batch(self, batch_size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(batch_size)

    def record_request(self, latency_seconds: float, mode: str) -> None:
        self.request_latency.record(latency_seconds)
        self.throughput.mark()
        with self._lock:
            self._mode_counts[mode] = self._mode_counts.get(mode, 0) + 1

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.request_latency.count

    def mean_batch_size(self) -> float:
        with self._lock:
            if self._batches == 0:
                return 0.0
            return self._batched_requests / self._batches

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """A JSON-serialisable view for the stats endpoint and tests."""
        latency = self.request_latency.summary()
        with self._lock:
            modes = dict(self._mode_counts)
            batches = self._batches
            errors = self._errors
        return {
            "requests": float(self.requests),
            "errors": float(errors),
            "batches": float(batches),
            "mean_batch_size": self.mean_batch_size(),
            "throughput_rps": self.throughput.requests_per_second(),
            "latency": latency,
            "latency_ms": {
                "p50": latency["p50_s"] * 1e3,
                "p95": latency["p95_s"] * 1e3,
                "p99": latency["p99_s"] * 1e3,
                "mean": latency["mean_s"] * 1e3,
            },
            "modes": {name: float(count) for name, count in modes.items()},
        }
