"""Serving-side metrics: request latency quantiles, batch sizes, throughput.

Thin aggregation over the :mod:`repro.perf.latency` primitives.  One
:class:`ServingMetrics` instance is shared by every worker of an
:class:`~repro.serving.pool.EnginePool`; all recording paths are
thread-safe.

Latency is measured queue-to-completion: the clock starts when a request
enters the micro-batch queue and stops when its future is resolved, so the
reported p50/p95/p99 include queueing and batching delay — what a client
actually experiences — not just engine compute.

Beyond the PR 1 counters, the online runtime adds three families:

* **Shed counters** (``record_shed``): one counter per rejection cause
  (``queue_full``, ``deadline``), so overload behaviour is observable and
  the bench can report shed rate by cause.
* **Per-worker histograms** (``worker_histogram``): each pool worker gets
  its own reservoir-backed :class:`~repro.perf.latency.LatencyHistogram`;
  :meth:`aggregate_latency` merges them (reservoirs pool), giving exact
  cross-worker tail percentiles instead of bucket-resolution estimates.
* **Reload records** (``record_reload``): every hot swap logs its version,
  duration, and how many LSH entries actually moved — the evidence that the
  swap went through the incremental ``update(dirty)`` path rather than a
  full rebuild.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.perf.latency import LatencyHistogram, ThroughputMeter

__all__ = ["ServingMetrics", "RouterMetrics"]

# Raw samples retained per histogram.  4096 keeps p999 exact for the bench's
# per-step request counts while bounding memory to a few tens of KiB.
_GLOBAL_RESERVOIR = 4096
_WORKER_RESERVOIR = 1024
_WINDOW_RESERVOIR = 512
_MAX_RELOAD_RECORDS = 64
_MAX_TRANSITIONS = 512


class ServingMetrics:
    """Aggregated counters for one serving runtime."""

    def __init__(self) -> None:
        self.request_latency = LatencyHistogram(reservoir_size=_GLOBAL_RESERVOIR)
        self.throughput = ThroughputMeter()
        self._lock = threading.Lock()
        self._batches = 0
        self._batched_requests = 0
        self._errors = 0
        self._mode_counts: dict[str, int] = {}
        self._shed_counts: dict[str, int] = {}
        self._worker_latency: dict[int, LatencyHistogram] = {}
        # Rolling window the autoscaler drains each control period: p99 over
        # *recent* traffic, not the lifetime histogram (which would never
        # recover from a past overload and keep the pool pinned high).
        self._window = LatencyHistogram(reservoir_size=_WINDOW_RESERVOIR)
        self._reloads = 0
        self._reload_failures = 0
        self._reload_failures_by_cause: dict[str, int] = {}
        self._reload_records: deque[dict[str, Any]] = deque(
            maxlen=_MAX_RELOAD_RECORDS
        )

    # ------------------------------------------------------------------
    # Recording (worker threads)
    # ------------------------------------------------------------------
    def record_batch(self, batch_size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(batch_size)

    def record_request(
        self,
        latency_seconds: float,
        mode: str,
        worker_index: int | None = None,
    ) -> None:
        self.request_latency.record(latency_seconds)
        self.throughput.mark()
        with self._lock:
            self._mode_counts[mode] = self._mode_counts.get(mode, 0) + 1
            window = self._window
        window.record(latency_seconds)
        if worker_index is not None:
            self.worker_histogram(worker_index).record(latency_seconds)

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_shed(self, cause: str) -> None:
        """Count one rejected request by cause (``queue_full``, ``deadline``)."""
        with self._lock:
            self._shed_counts[cause] = self._shed_counts.get(cause, 0) + 1

    def record_reload(
        self,
        version: str,
        duration_s: float,
        moved_entries: int,
        changed_rows: int,
        full_rebuild: bool,
    ) -> None:
        """Log one completed hot swap (see :meth:`reload_records`)."""
        with self._lock:
            self._reloads += 1
            self._reload_records.append(
                {
                    "version": version,
                    "duration_s": float(duration_s),
                    "moved_entries": int(moved_entries),
                    "changed_rows": int(changed_rows),
                    "full_rebuild": bool(full_rebuild),
                }
            )

    def record_reload_failure(self, cause: str = "unknown") -> None:
        """Count one failed checkpoint reload by cause (``corrupt``,
        ``shape_mismatch``, ``io``, ``unknown``)."""
        with self._lock:
            self._reload_failures += 1
            self._reload_failures_by_cause[cause] = (
                self._reload_failures_by_cause.get(cause, 0) + 1
            )

    # ------------------------------------------------------------------
    # Per-worker latency
    # ------------------------------------------------------------------
    def worker_histogram(self, worker_index: int) -> LatencyHistogram:
        """The (lazily created) latency histogram for one pool worker."""
        with self._lock:
            histogram = self._worker_latency.get(worker_index)
            if histogram is None:
                # Distinct seeds keep worker reservoirs independent.
                histogram = LatencyHistogram(
                    reservoir_size=_WORKER_RESERVOIR, seed=worker_index + 1
                )
                self._worker_latency[worker_index] = histogram
            return histogram

    def aggregate_latency(self) -> LatencyHistogram:
        """Merge all per-worker histograms into one (reservoirs pool)."""
        merged = LatencyHistogram(reservoir_size=_GLOBAL_RESERVOIR)
        with self._lock:
            workers = list(self._worker_latency.values())
        for histogram in workers:
            merged.merge(histogram)
        return merged

    def take_latency_window(self) -> LatencyHistogram:
        """Swap out and return the rolling window (autoscaler control input)."""
        fresh = LatencyHistogram(reservoir_size=_WINDOW_RESERVOIR)
        with self._lock:
            window = self._window
            self._window = fresh
        return window

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.request_latency.count

    @property
    def sheds(self) -> dict[str, int]:
        with self._lock:
            return dict(self._shed_counts)

    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self._shed_counts.values())

    @property
    def reloads(self) -> int:
        with self._lock:
            return self._reloads

    @property
    def reload_failures(self) -> int:
        with self._lock:
            return self._reload_failures

    @property
    def reload_failures_by_cause(self) -> dict[str, int]:
        with self._lock:
            return dict(self._reload_failures_by_cause)

    def reload_records(self) -> list[dict[str, Any]]:
        """Recent hot-swap reports, oldest first (bounded history)."""
        with self._lock:
            return [dict(record) for record in self._reload_records]

    def incremental_reloads(self) -> int:
        """How many recorded swaps went through the incremental LSH path."""
        with self._lock:
            return sum(
                1 for record in self._reload_records if not record["full_rebuild"]
            )

    def mean_batch_size(self) -> float:
        with self._lock:
            if self._batches == 0:
                return 0.0
            return self._batched_requests / self._batches

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """A JSON-serialisable view for the stats endpoint and tests."""
        latency = self.request_latency.summary()
        with self._lock:
            modes = dict(self._mode_counts)
            sheds = dict(self._shed_counts)
            batches = self._batches
            errors = self._errors
            reloads = self._reloads
            reload_failures = self._reload_failures
            failures_by_cause = dict(self._reload_failures_by_cause)
        return {
            "requests": float(self.requests),
            "errors": float(errors),
            "batches": float(batches),
            "mean_batch_size": self.mean_batch_size(),
            "throughput_rps": self.throughput.requests_per_second(),
            "latency": latency,
            "latency_ms": {
                "p50": latency["p50_s"] * 1e3,
                "p95": latency["p95_s"] * 1e3,
                "p99": latency["p99_s"] * 1e3,
                "p999": latency["p999_s"] * 1e3,
                "mean": latency["mean_s"] * 1e3,
            },
            "modes": {name: float(count) for name, count in modes.items()},
            "sheds": {name: float(count) for name, count in sheds.items()},
            "shed_total": float(sum(sheds.values())),
            "reloads": float(reloads),
            "reload_failures": float(reload_failures),
            "reload_failures_by_cause": {
                name: float(count) for name, count in failures_by_cause.items()
            },
        }

class RouterMetrics:
    """Aggregated counters for one :class:`~repro.serving.router.ReplicaRouter`.

    Router-level latency is *end-to-end across retries* — what a client of
    the router observes, including backoff sleeps and failed attempts —
    which is deliberately a different number from any single replica's
    queue-to-completion histogram.

    Besides counters, the router records every state **transition** it
    observes (replica liveness/readiness flips, circuit-breaker moves,
    degradation level changes) with a monotonic timestamp.  The failover
    bench reads these to measure detection latency: the gap between a
    replica being killed and its first ``live: True → False`` record.
    """

    def __init__(self) -> None:
        self.request_latency = LatencyHistogram(reservoir_size=_GLOBAL_RESERVOIR)
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._attempt_failures: dict[str, dict[str, int]] = {}
        self._retries = 0
        self._failovers = 0
        self._outcomes: dict[str, int] = {}
        self._transitions: deque[dict[str, Any]] = deque(maxlen=_MAX_TRANSITIONS)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_attempt(self, replica: str) -> None:
        with self._lock:
            self._attempts[replica] = self._attempts.get(replica, 0) + 1

    def record_attempt_failure(self, replica: str, cause: str) -> None:
        with self._lock:
            per_replica = self._attempt_failures.setdefault(replica, {})
            per_replica[cause] = per_replica.get(cause, 0) + 1

    def record_retry(self, failover: bool) -> None:
        """One extra attempt after a failure; ``failover`` = new replica."""
        with self._lock:
            self._retries += 1
            if failover:
                self._failovers += 1

    def record_outcome(self, outcome: str, latency_s: float | None = None) -> None:
        """Terminal result of one routed request (``ok``, an error cause...)."""
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
        if latency_s is not None:
            self.request_latency.record(latency_s)

    def record_transition(
        self, kind: str, replica: str, old: Any, new: Any, at: float
    ) -> None:
        """Log one observed state flip (``live``/``ready``/``breaker``/
        ``degradation``) at monotonic time ``at``."""
        with self._lock:
            self._transitions.append(
                {
                    "kind": kind,
                    "replica": replica,
                    "old": old,
                    "new": new,
                    "at": float(at),
                }
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def transitions(
        self, kind: str | None = None, replica: str | None = None
    ) -> list[dict[str, Any]]:
        """Recorded transitions, oldest first, optionally filtered."""
        with self._lock:
            records = list(self._transitions)
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        if replica is not None:
            records = [r for r in records if r["replica"] == replica]
        return records

    @property
    def outcomes(self) -> dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    @property
    def failovers(self) -> int:
        with self._lock:
            return self._failovers

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable view for the router stats endpoint."""
        latency = self.request_latency.summary()
        with self._lock:
            attempts = dict(self._attempts)
            failures = {
                replica: dict(causes)
                for replica, causes in self._attempt_failures.items()
            }
            outcomes = dict(self._outcomes)
            retries = self._retries
            failovers = self._failovers
        return {
            "requests": float(sum(outcomes.values())),
            "outcomes": {name: float(count) for name, count in outcomes.items()},
            "retries": float(retries),
            "failovers": float(failovers),
            "attempts": {name: float(count) for name, count in attempts.items()},
            "attempt_failures": {
                replica: {name: float(count) for name, count in causes.items()}
                for replica, causes in failures.items()
            },
            "latency_ms": {
                "p50": latency["p50_s"] * 1e3,
                "p99": latency["p99_s"] * 1e3,
                "mean": latency["mean_s"] * 1e3,
            },
        }
