"""Versioned on-disk checkpoints for trained SLIDE networks.

A checkpoint is a directory with two files:

* ``manifest.json`` — format version, the full network config (JSON), the
  optimiser's hyper-parameters, user metadata, and a SHA-256 checksum of the
  array payload;
* ``arrays.npz`` — every layer's weights and biases, the LSH index contents
  of every hash-enabled layer (item ids plus their ``(L, K)`` hash codes, in
  insertion order), and the optimiser's per-parameter state tensors.

Loading reconstructs the network from its config, overwrites the freshly
initialised parameters in place, and *replays* the stored hash codes into
the rebuilt index — the hash functions themselves are deterministic given
``(config, seed)``, so only the table contents need to travel.  The snapshot
surface is the index's contiguous ``(n,)`` item / ``(n, L, K)`` code
matrices (``snapshot_codes``/``restore_codes``), so the replay is a batched
fingerprint pack plus one ``insert_many`` per table rather than a per-item
loop.  Replaying codes in row order reproduces bucket membership exactly
for any bucket that never overflowed; the exact eviction order of
overflowed FIFO buckets is not preserved (a full ``rebuild_all_tables()``
restores the canonical state if required).

Integrity is enforced end-to-end: a truncated, bit-flipped, or partially
written ``arrays.npz`` fails the checksum and raises
:class:`CheckpointError` instead of yielding a silently corrupt model.

:class:`CheckpointStore` layers monotonically numbered versions
(``v0001``, ``v0002``, …) on top, which is what the training loop and the
model server share: the trainer appends versions, the server loads
``latest()``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import shutil
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro import __version__
from repro.config import (
    SlideNetworkConfig,
    network_config_from_dict,
    network_config_to_dict,
    optimizer_config_from_dict,
    optimizer_config_to_dict,
)
from repro.core.network import SlideNetwork
from repro.optim.base import Optimizer
from repro.optim.factory import make_optimizer

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointExistsError",
    "LoadedCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "restore_checkpoint_into",
    "CheckpointStore",
]

CHECKPOINT_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_ARRAYS_NAME = "arrays.npz"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, structurally invalid, or fails its checksum."""


class CheckpointExistsError(CheckpointError):
    """A checkpoint already occupies the target path (``overwrite=False``)."""


@dataclass
class LoadedCheckpoint:
    """Everything reconstructed from one checkpoint directory."""

    network: SlideNetwork
    optimizer: Optimizer | None
    metadata: dict[str, Any] = field(default_factory=dict)
    manifest: dict[str, Any] = field(default_factory=dict)

    @property
    def config(self) -> SlideNetworkConfig:
        return self.network.config


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | Path,
    network: SlideNetwork,
    optimizer: Optimizer | None = None,
    metadata: Mapping[str, Any] | None = None,
    overwrite: bool = True,
) -> Path:
    """Write ``network`` (and optionally its optimiser) to directory ``path``.

    Neurons whose weights changed since the last scheduled re-hash are
    re-hashed first, so the snapshot stores a *canonical* index (table
    entries consistent with the saved weights) and a reloaded network
    serves identically to the live one.

    Writing a *new* checkpoint is atomic at the directory level: files land
    in a hidden temporary sibling which is renamed into place only once
    complete, so a concurrent reader (e.g. a server polling
    ``CheckpointStore.latest()``) never observes a partial checkpoint and a
    crash mid-save leaves no broken version behind.  With
    ``overwrite=False`` an occupied target raises
    :class:`CheckpointExistsError` instead of being replaced — the rename
    itself detects the collision, so concurrent savers cannot destroy each
    other's work.  ``overwrite=True`` (the default) replaces an existing
    checkpoint at ``path`` and assumes a single writer for that path.

    Returns the checkpoint path.
    """
    final_path = Path(path)
    final_path.parent.mkdir(parents=True, exist_ok=True)
    # Hidden prefix keeps in-progress saves invisible to CheckpointStore's
    # version scan; pid + monotonic stamp keeps concurrent savers (processes
    # or threads) out of each other's temp dirs.
    path = final_path.parent / (
        f".{final_path.name}.tmp-{os.getpid()}-{time.monotonic_ns()}"
    )
    path.mkdir()

    for layer in network.layers:
        if layer.lsh_index is not None and layer.dirty_neuron_count:
            layer.rebuild()

    arrays: dict[str, np.ndarray] = {"iteration": np.int64(network.iteration)}
    lsh_layers: list[int] = []
    for idx, layer in enumerate(network.layers):
        arrays[f"layer{idx}.weights"] = layer.weights
        arrays[f"layer{idx}.biases"] = layer.biases
        if layer.lsh_index is not None:
            items, codes = layer.lsh_index.snapshot_codes()
            arrays[f"layer{idx}.lsh_items"] = items
            arrays[f"layer{idx}.lsh_codes"] = codes
            lsh_layers.append(idx)

    optimizer_entry: dict[str, Any] | None = None
    if optimizer is not None:
        optimizer_entry = {
            "config": optimizer_config_to_dict(optimizer.to_config()),
            "step_count": int(optimizer.step_count),
            "parameters": {},
        }
        for name in optimizer.parameter_names():
            state = optimizer.state_of(name)
            optimizer_entry["parameters"][name] = sorted(state.keys())
            for slot, array in state.items():
                arrays[f"optim.{name}.{slot}"] = array

    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    (path / _ARRAYS_NAME).write_bytes(payload)

    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "repro_version": __version__,
        "saved_unix_time": time.time(),  # repro: allow[clock] metadata, not replayed
        "network_config": network_config_to_dict(network.config),
        "lsh_layers": lsh_layers,
        "optimizer": optimizer_entry,
        "metadata": dict(metadata or {}),
        "arrays_file": _ARRAYS_NAME,
        "arrays_sha256": hashlib.sha256(payload).hexdigest(),
    }
    (path / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))

    if overwrite and final_path.exists():
        shutil.rmtree(final_path)
    try:
        # Renaming onto an existing non-empty directory fails, which is the
        # collision detector: a concurrent saver that finished first keeps
        # its checkpoint.
        path.rename(final_path)
    except OSError as exc:
        shutil.rmtree(path, ignore_errors=True)
        raise CheckpointExistsError(
            f"checkpoint {final_path} already exists (concurrent save?)"
        ) from exc
    return final_path


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _read_manifest(path: Path) -> dict[str, Any]:
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise CheckpointError(f"no {_MANIFEST_NAME} in {path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt manifest in {path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version!r} "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    return manifest


def _read_arrays(path: Path, manifest: Mapping[str, Any]) -> dict[str, np.ndarray]:
    arrays_path = path / str(manifest.get("arrays_file", _ARRAYS_NAME))
    if not arrays_path.is_file():
        raise CheckpointError(f"missing array payload {arrays_path.name} in {path}")
    payload = arrays_path.read_bytes()
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("arrays_sha256"):
        raise CheckpointError(
            f"checksum mismatch for {arrays_path.name} in {path}: "
            "the checkpoint is corrupt or partially written"
        )
    with np.load(io.BytesIO(payload)) as data:
        return {key: np.array(data[key]) for key in data.files}


def load_checkpoint(
    path: str | Path, load_optimizer: bool = True
) -> LoadedCheckpoint:
    """Reconstruct a network (and optionally optimiser) from ``path``."""
    path = Path(path)
    manifest = _read_manifest(path)
    arrays = _read_arrays(path, manifest)

    config = network_config_from_dict(manifest["network_config"])
    network = SlideNetwork(config)
    network.iteration = int(arrays.get("iteration", 0))

    for idx, layer in enumerate(network.layers):
        try:
            weights = arrays[f"layer{idx}.weights"]
            biases = arrays[f"layer{idx}.biases"]
        except KeyError as exc:
            raise CheckpointError(f"missing arrays for layer {idx} in {path}") from exc
        if weights.shape != layer.weights.shape or biases.shape != layer.biases.shape:
            raise CheckpointError(
                f"layer {idx} shape mismatch: checkpoint {weights.shape} "
                f"vs config {layer.weights.shape}"
            )
        # Overwrite in place so the arrays the optimiser and LSH index refer
        # to stay the same objects.
        layer.weights[...] = weights
        layer.biases[...] = biases
        if layer.lsh_index is not None:
            items = arrays.get(f"layer{idx}.lsh_items")
            codes = arrays.get(f"layer{idx}.lsh_codes")
            if items is None or codes is None:
                raise CheckpointError(
                    f"missing LSH index contents for layer {idx} in {path}"
                )
            layer.lsh_index.restore_codes(items, codes)

    optimizer: Optimizer | None = None
    optimizer_entry = manifest.get("optimizer")
    if load_optimizer and optimizer_entry is not None:
        optimizer = make_optimizer(
            optimizer_config_from_dict(optimizer_entry["config"])
        )
        for layer in network.layers:
            layer.register_parameters(optimizer)
        optimizer.step_count = int(optimizer_entry["step_count"])
        for name, slots in optimizer_entry["parameters"].items():
            if not optimizer.has_parameter(name):
                raise CheckpointError(
                    f"optimiser state for unknown parameter {name!r} in {path}"
                )
            state = optimizer.state_of(name)
            for slot in slots:
                key = f"optim.{name}.{slot}"
                if key not in arrays:
                    raise CheckpointError(f"missing optimiser array {key} in {path}")
                state[slot][...] = arrays[key]

    return LoadedCheckpoint(
        network=network,
        optimizer=optimizer,
        metadata=dict(manifest.get("metadata", {})),
        manifest=manifest,
    )


def verify_checkpoint(path: str | Path) -> dict[str, Any]:
    """Cheap integrity check: manifest well-formed, payload checksum intact.

    Returns the manifest on success; raises :class:`CheckpointError` on a
    missing, truncated, or corrupt checkpoint.  Does *not* build a network,
    so resume paths can scan several candidate versions quickly.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    arrays_path = path / str(manifest.get("arrays_file", _ARRAYS_NAME))
    if not arrays_path.is_file():
        raise CheckpointError(f"missing array payload {arrays_path.name} in {path}")
    digest = hashlib.sha256(arrays_path.read_bytes()).hexdigest()
    if digest != manifest.get("arrays_sha256"):
        raise CheckpointError(
            f"checksum mismatch for {arrays_path.name} in {path}: "
            "the checkpoint is corrupt or partially written"
        )
    return manifest


def restore_checkpoint_into(
    path: str | Path,
    network: SlideNetwork,
    optimizer: Optimizer | None = None,
) -> dict[str, Any]:
    """Restore a checkpoint *in place* into a live network (and optimiser).

    The mid-run resume path: unlike :func:`load_checkpoint`, which builds a
    fresh network from the stored config, this overwrites the arrays of an
    existing ``network``/``optimizer`` pair — preserving every external
    reference to them (shared-memory bindings, registered optimiser slots,
    LSH index views).  The stored hash codes are replayed into the layers'
    own indexes, so the restored tables match the saving network's exactly
    (the checkpoint was saved canonical: dirty neurons re-hashed first).

    The stored network config must match ``network.config``; a mismatch
    raises :class:`CheckpointError`.  Returns the checkpoint metadata.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    arrays = _read_arrays(path, manifest)

    stored_config = network_config_from_dict(manifest["network_config"])
    if stored_config != network.config:
        raise CheckpointError(
            f"checkpoint {path} was saved with a different network config; "
            "resume requires an identical architecture and seed"
        )
    network.iteration = int(arrays.get("iteration", 0))
    for idx, layer in enumerate(network.layers):
        try:
            weights = arrays[f"layer{idx}.weights"]
            biases = arrays[f"layer{idx}.biases"]
        except KeyError as exc:
            raise CheckpointError(f"missing arrays for layer {idx} in {path}") from exc
        if weights.shape != layer.weights.shape or biases.shape != layer.biases.shape:
            raise CheckpointError(
                f"layer {idx} shape mismatch: checkpoint {weights.shape} "
                f"vs live network {layer.weights.shape}"
            )
        layer.weights[...] = weights
        layer.biases[...] = biases
        if layer.lsh_index is not None:
            items = arrays.get(f"layer{idx}.lsh_items")
            codes = arrays.get(f"layer{idx}.lsh_codes")
            if items is None or codes is None:
                raise CheckpointError(
                    f"missing LSH index contents for layer {idx} in {path}"
                )
            layer.lsh_index.restore_codes(items, codes)

    optimizer_entry = manifest.get("optimizer")
    if optimizer is not None and optimizer_entry is not None:
        optimizer.step_count = int(optimizer_entry["step_count"])
        for name, slots in optimizer_entry["parameters"].items():
            if not optimizer.has_parameter(name):
                raise CheckpointError(
                    f"optimiser state for unknown parameter {name!r} in {path}"
                )
            state = optimizer.state_of(name)
            for slot in slots:
                key = f"optim.{name}.{slot}"
                if key not in arrays:
                    raise CheckpointError(f"missing optimiser array {key} in {path}")
                if state[slot].shape != arrays[key].shape:
                    raise CheckpointError(
                        f"optimiser array {key} shape mismatch in {path}"
                    )
                state[slot][...] = arrays[key]
    return dict(manifest.get("metadata", {}))


# ----------------------------------------------------------------------
# Versioned store
# ----------------------------------------------------------------------
class CheckpointStore:
    """Monotonically numbered checkpoint versions under one root directory.

    Version directories are named ``v0001``, ``v0002``, …; ``latest()``
    resolves the highest number, which is the hand-off point between a
    training loop that appends versions and a model server that loads the
    newest one.  The bare number is the whole directory name on purpose:
    the atomic rename that claims it is what detects concurrent savers, so
    two writers can never produce the same version.  Tags are recorded in
    the checkpoint metadata (``metadata["tag"]``) rather than the name
    (legacy ``v0002-tag`` directories are still read).
    """

    _VERSION_RE = re.compile(r"^v(\d{4,})(?:-(.+))?$")

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def versions(self) -> list[Path]:
        """Existing version directories, oldest first."""
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir():
                match = self._VERSION_RE.match(entry.name)
                if match:
                    found.append((int(match.group(1)), entry))
        # Name is the tiebreak for legacy tagged duplicates of one number,
        # so latest() is deterministic regardless of directory-scan order.
        return [
            entry
            for _, entry in sorted(found, key=lambda pair: (pair[0], pair[1].name))
        ]

    def latest(self) -> Path:
        """Path of the newest version (:class:`CheckpointError` if none)."""
        versions = self.versions()
        if not versions:
            raise CheckpointError(f"no checkpoint versions under {self.root}")
        return versions[-1]

    def save(
        self,
        network: SlideNetwork,
        optimizer: Optimizer | None = None,
        metadata: Mapping[str, Any] | None = None,
        tag: str | None = None,
        max_attempts: int = 16,
        keep_last: int | None = None,
    ) -> Path:
        """Write a new version directory and return its path.

        Versions are never overwritten: if a concurrent saver claims the
        same number first (detected atomically by the final rename), the
        store rescans and retries with the next number.  ``tag`` lands in
        the checkpoint metadata, keeping the claimed name — and therefore
        collision detection — independent of it.

        ``keep_last=N`` auto-prunes after a successful save (see
        :meth:`prune`), so a long-running publish loop does not grow disk
        unboundedly.
        """
        if tag is not None:
            metadata = {**(metadata or {}), "tag": tag}
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        last_error: CheckpointExistsError | None = None
        for _ in range(max_attempts):
            versions = self.versions()
            next_number = 1
            if versions:
                match = self._VERSION_RE.match(versions[-1].name)
                assert match is not None
                next_number = int(match.group(1)) + 1
            try:
                saved = save_checkpoint(
                    self.root / f"v{next_number:04d}",
                    network,
                    optimizer,
                    metadata,
                    overwrite=False,
                )
            except CheckpointExistsError as exc:
                last_error = exc
                continue
            if keep_last is not None:
                self.prune(keep_last=keep_last)
            return saved
        raise CheckpointError(
            f"could not claim a version under {self.root} "
            f"after {max_attempts} attempts"
        ) from last_error

    def load_latest(self, load_optimizer: bool = True) -> LoadedCheckpoint:
        """Load the newest version."""
        return load_checkpoint(self.latest(), load_optimizer=load_optimizer)

    def latest_valid(self) -> Path:
        """Newest version that passes :func:`verify_checkpoint`.

        The resume entry point after an unclean shutdown: a torn or
        corrupted newest version (crash mid-write on a non-atomic
        filesystem, disk damage) is skipped and the scan falls back to the
        next older one, so a run resumes from the last *good* checkpoint
        instead of dying on the bad one.  Raises :class:`CheckpointError`
        when no intact version exists.
        """
        versions = self.versions()
        if not versions:
            raise CheckpointError(f"no checkpoint versions under {self.root}")
        errors: list[str] = []
        for candidate in reversed(versions):
            try:
                verify_checkpoint(candidate)
            except CheckpointError as exc:
                errors.append(f"{candidate.name}: {exc}")
                continue
            return candidate
        raise CheckpointError(
            f"no intact checkpoint under {self.root}; "
            "all versions failed verification:\n" + "\n".join(errors)
        )

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, keep_last: int) -> list[Path]:
        """Delete all but the newest ``keep_last`` versions.

        Pinned versions (see :meth:`pin`) are never deleted, so a watcher
        mid-load on an older version cannot have the directory ripped out
        from under it — the next prune collects the version once the pin is
        released.  Returns the paths actually removed.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        removed: list[Path] = []
        for candidate in self.versions()[:-keep_last]:
            if self._is_pinned(candidate):
                continue
            shutil.rmtree(candidate, ignore_errors=True)
            removed.append(candidate)
        return removed

    @contextmanager
    def pin(self, version: str | Path) -> Iterator[Path]:
        """Hold ``version`` exempt from :meth:`prune` for the ``with`` body.

        The pin is a marker file *inside* the version directory, so it works
        across processes (a trainer pruning in one process cannot delete a
        version a server is loading in another) and cannot leak beyond the
        directory's own lifetime.
        """
        path = Path(version)
        if not path.is_absolute():
            path = self.root / path
        marker = path / f".pin-{os.getpid()}-{time.monotonic_ns()}"
        marker.touch()
        try:
            yield path
        finally:
            marker.unlink(missing_ok=True)

    @staticmethod
    def _is_pinned(version: Path) -> bool:
        return any(version.glob(".pin-*"))
