"""Resilient multi-replica serving: health checks, retries, breakers, degradation.

A single :class:`~repro.serving.runtime.OnlineRuntime` is one fault domain:
a hung worker pool, a poisoned hot swap, or a dead process takes every
in-flight and future request with it.  :class:`ReplicaRouter` removes that
single point of failure with ``N`` in-process replicas sharing one
:class:`~repro.serving.checkpoint.CheckpointStore` (each replica's watcher
pulls the same published versions, so they converge on the same weights)
behind a stateless routing layer:

* **Health checking** — a control thread probes each replica every
  ``health_interval_s``.  *Liveness* is behavioural: a tiny probe predict
  must resolve within ``probe_timeout_s`` (a hung replica still has alive
  threads — only a timed probe notices it stopped answering).  *Readiness*
  additionally requires alive pool workers and a resident checkpoint no
  more than ``readiness_max_staleness`` versions behind the store.  Every
  flip is recorded with a monotonic timestamp, which is how the failover
  bench measures detection latency.
* **Routing** — power-of-two-choices on queue depth among ready replicas
  (falling back to merely-live ones): two random candidates, pick the
  shallower queue.  Cheaper than scanning all queues per request, and
  provably avoids the thundering-herd of pure shortest-queue.
* **Retries** — predicts are idempotent, so a failed attempt is retried on
  a *different* replica (capped exponential backoff between error retries;
  immediate failover for sheds and hangs) under a per-request deadline
  budget.  Each attempt is bounded by ``attempt_timeout_s`` so a hang
  costs one timeout, not the whole budget.
* **Circuit breaking** — per-replica :class:`CircuitBreaker`
  (closed → open → half-open): ``breaker_failure_threshold`` consecutive
  failures (or a windowed p99 above ``breaker_p99_ms``) opens the circuit;
  after ``breaker_recovery_s`` a limited number of probe requests decide
  between closing it and re-opening.
* **Graceful degradation** — under sustained queue pressure the
  :class:`DegradationController` walks a quality-for-availability ladder
  instead of failing requests: shrink every replica's LSH
  ``active_budget`` through ``degradation_budget_steps``, then disable
  exact rerank (rank by raw collision counts), and only then shed at the
  router.  Every answer is stamped with the ladder level that produced it
  (``Prediction.degradation``) and the replica that served it.

The router duck-types the :class:`~repro.serving.pool.ServingRuntime`
surface the HTTP front-end and the load generator use (``submit`` /
``predict`` / ``stats`` / ``readiness`` / ``alive_workers`` /
``input_dim``), so ``build_server(router)`` just works.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import RouterConfig, ServingConfig
from repro.faults import ServingFaultPlan
from repro.serving.checkpoint import CheckpointStore
from repro.serving.engine import Prediction, SparseInferenceEngine
from repro.serving.errors import (
    DeadlineExceededError,
    NotServingError,
    RejectedError,
    ReplicaUnavailableError,
    RetriesExhaustedError,
)
from repro.serving.metrics import RouterMetrics
from repro.serving.runtime import OnlineRuntime
from repro.types import SparseExample, SparseVector
from repro.utils import sanitize

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "ReplicaHealth",
    "Replica",
    "DegradationController",
    "ReplicaRouter",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

# Router-side request threads: callers of submit() get a future backed by
# this pool, so a synchronous retry loop per request never blocks the
# client.  Normal attempts take milliseconds; the cap only binds when many
# requests are simultaneously waiting out attempt timeouts on a hung
# replica, which is exactly when admission should start queueing anyway.
_ROUTER_MAX_INFLIGHT = 32


class CircuitBreaker:
    """Per-replica closed → open → half-open failure gate.

    Closed passes everything and counts *consecutive* failures (any
    success resets the streak).  ``breaker_failure_threshold`` failures —
    or, when ``breaker_p99_ms`` is set, a full ``breaker_window`` of
    latencies whose p99 exceeds it — trip the breaker open.  Open rejects
    without touching the replica for ``breaker_recovery_s``, then promotes
    to half-open, which admits at most ``breaker_half_open_probes``
    requests: all succeeding closes the breaker, any failing re-opens it
    (restarting the recovery clock).

    ``now`` is injectable so tests drive the clock instead of sleeping.
    All methods are thread-safe.
    """

    def __init__(
        self,
        config: RouterConfig,
        now: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, float], None] | None = None,
    ) -> None:
        self.config = config
        self._now = now
        self._on_transition = on_transition
        self._lock = sanitize.lock("router.breaker")
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self._latencies_ms: deque[float] = deque(maxlen=config.breaker_window)

    # ------------------------------------------------------------------
    # State machine internals (all called with the lock held)
    # ------------------------------------------------------------------
    def _transition_locked(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state, self._now())

    def _trip_locked(self) -> None:
        self._opened_at = self._now()
        self._consecutive_failures = 0
        self._probes_issued = 0
        self._probe_successes = 0
        self._latencies_ms.clear()
        self._transition_locked(BREAKER_OPEN)

    def _maybe_promote_locked(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._now() - self._opened_at >= self.config.breaker_recovery_s
        ):
            self._probes_issued = 0
            self._probe_successes = 0
            self._transition_locked(BREAKER_HALF_OPEN)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_promote_locked()
            return self._state

    def allow(self) -> bool:
        """May one request pass?  In half-open this *consumes* a probe slot."""
        with self._lock:
            self._maybe_promote_locked()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                return False
            if self._probes_issued < self.config.breaker_half_open_probes:
                self._probes_issued += 1
                return True
            return False

    def record_success(self, latency_s: float | None = None) -> None:
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.breaker_half_open_probes:
                    self._consecutive_failures = 0
                    self._transition_locked(BREAKER_CLOSED)
                return
            self._consecutive_failures = 0
            if latency_s is None or self.config.breaker_p99_ms is None:
                return
            self._latencies_ms.append(latency_s * 1e3)
            if len(self._latencies_ms) < self.config.breaker_window:
                return
            ordered = sorted(self._latencies_ms)
            p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            if p99 > self.config.breaker_p99_ms:
                self._trip_locked()

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_promote_locked()
            if self._state == BREAKER_HALF_OPEN:
                # A probe failed: straight back to open, recovery restarts.
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures
                >= self.config.breaker_failure_threshold
            ):
                self._trip_locked()


@dataclass(frozen=True)
class ReplicaHealth:
    """Result of the most recent health check for one replica."""

    live: bool = False
    ready: bool = False
    detail: str = "unchecked"
    checked_at: float = 0.0


class Replica:
    """One named :class:`OnlineRuntime` plus its breaker and health state."""

    def __init__(
        self,
        name: str,
        runtime: OnlineRuntime,
        breaker: CircuitBreaker,
    ) -> None:
        self.name = name
        self.runtime = runtime
        self.breaker = breaker
        self.health = ReplicaHealth()
        self.killed = False

    def queue_depth(self) -> int:
        return self.runtime.queue.pending()

    def kill(self) -> None:
        """Hard-stop this replica (chaos hook: no drain, futures cancel)."""
        self.killed = True
        self.runtime.stop(drain=False)


class DegradationController:
    """Walks the shared quality ladder from sustained queue pressure.

    Levels for ``S = len(degradation_budget_steps)`` budget steps:

    * ``0`` — full quality (configured budget, exact rerank);
    * ``1..S`` — every replica's ``active_budget`` scaled by
      ``degradation_budget_steps[level-1]`` (monotonically shrinking);
    * ``S+1`` — exact rerank disabled on top of the smallest budget
      (answers ranked by raw collision counts);
    * ``S+2`` — router-side shedding: new requests are rejected while the
      chosen replica's queue is at least ``degradation_shed_depth`` deep.

    Escalation needs ``degradation_up_patience`` consecutive overloaded
    samples (max replica queue depth above ``degradation_queue_high``);
    recovery needs ``degradation_down_patience`` calm ones — the same
    asymmetric hysteresis as the autoscaler, because degrading too late
    costs availability while recovering too eagerly causes flapping.

    Mirrors the autoscaler's split between a pure decision step (what the
    unit tests drive via :meth:`step`) and a background control thread
    owned by the router.
    """

    def __init__(
        self,
        replicas: list[Replica],
        config: RouterConfig,
        metrics: RouterMetrics | None = None,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.replicas = replicas
        self.config = config
        self.metrics = metrics
        self._now = now
        self._lock = sanitize.lock("router.degradation")
        self.level = 0
        self._up_votes = 0
        self._down_votes = 0
        # The configured budget (None = unbounded) is restored verbatim at
        # level 0; scaling needs a concrete base, so None maps to the full
        # output dimension.
        self._configured: dict[str, int | None] = {}
        self._base: dict[str, int] = {}
        for replica in replicas:
            engine = replica.runtime.engine
            if isinstance(engine, SparseInferenceEngine):
                self._configured[replica.name] = engine.active_budget
                self._base[replica.name] = (
                    engine.active_budget
                    if engine.active_budget is not None
                    else engine.output_dim
                )

    @property
    def max_level(self) -> int:
        return self.config.max_degradation_level

    def shed_active(self) -> bool:
        return self.level >= self.max_level

    # ------------------------------------------------------------------
    # Decision + actuation
    # ------------------------------------------------------------------
    def overloaded(self) -> bool:
        depths = [
            replica.queue_depth()
            for replica in self.replicas
            if not replica.killed and replica.health.live
        ]
        if not depths:
            return False
        return max(depths) > self.config.degradation_queue_high

    def step(self, now: float | None = None) -> int:
        """One control period: sample pressure, vote, maybe move one level."""
        with self._lock:
            if self.overloaded():
                self._up_votes += 1
                self._down_votes = 0
            else:
                self._down_votes += 1
                self._up_votes = 0
            target = self.level
            if self._up_votes >= self.config.degradation_up_patience:
                self._up_votes = 0
                target = min(self.level + 1, self.max_level)
            elif self._down_votes >= self.config.degradation_down_patience:
                self._down_votes = 0
                target = max(self.level - 1, 0)
            if target != self.level:
                self._set_level_locked(target, now)
            return self.level

    def set_level(self, level: int, now: float | None = None) -> None:
        """Force a ladder level (bench/tests); resets the vote counters."""
        if not 0 <= level <= self.max_level:
            raise ValueError(
                f"degradation level must be in [0, {self.max_level}], got {level}"
            )
        with self._lock:
            self._up_votes = 0
            self._down_votes = 0
            if level != self.level:
                self._set_level_locked(level, now)

    def _set_level_locked(self, level: int, now: float | None) -> None:
        old = self.level
        self.level = level
        self._apply(level)
        if self.metrics is not None:
            at = self._now() if now is None else now
            self.metrics.record_transition("degradation", "router", old, level, at)

    def _apply(self, level: int) -> None:
        steps = self.config.degradation_budget_steps
        rerank = level <= len(steps)
        for replica in self.replicas:
            engine = replica.runtime.engine
            if not isinstance(engine, SparseInferenceEngine):
                continue
            if level == 0:
                engine.active_budget = self._configured[replica.name]
            else:
                step = steps[min(level, len(steps)) - 1]
                engine.active_budget = max(
                    1, int(self._base[replica.name] * step)
                )
            engine.rerank = rerank


class ReplicaRouter:
    """Stateless router over ``N`` :class:`OnlineRuntime` replicas.

    Construction builds (but does not start) the replicas from one shared
    checkpoint store; :meth:`start` boots them, runs an initial synchronous
    health check, and launches the control thread (health checks +
    degradation ladder).  ``fault_plan`` attaches deterministic
    :class:`~repro.faults.ServingFaultInjector` chaos to named replicas.
    """

    def __init__(
        self,
        store: CheckpointStore | str | Path,
        serving_config: ServingConfig | None = None,
        router_config: RouterConfig | None = None,
        fault_plan: ServingFaultPlan | None = None,
    ) -> None:
        if not isinstance(store, CheckpointStore):
            store = CheckpointStore(store)
        self.store = store
        self.serving_config = serving_config or ServingConfig()
        self.router_config = router_config or RouterConfig()
        self.metrics = RouterMetrics()
        self._rng = random.Random(self.router_config.seed)
        self._rng_lock = sanitize.lock("router.rng")
        self.replicas: list[Replica] = []
        plan = fault_plan or ServingFaultPlan()
        for index in range(self.router_config.num_replicas):
            name = f"r{index}"
            runtime = OnlineRuntime(store, self.serving_config)
            breaker = CircuitBreaker(
                self.router_config,
                on_transition=self._breaker_recorder(name),
            )
            injector = plan.injector_for(name)
            if injector.specs:
                runtime.engine.fault_injector = injector
            self.replicas.append(Replica(name, runtime, breaker))
        self.degradation = DegradationController(
            self.replicas, self.router_config, metrics=self.metrics
        )
        # Minimal valid probe: one feature, answered with k=1.  Liveness
        # only needs "a predict comes back", not a meaningful answer.
        self._probe_example = SparseExample(
            features=SparseVector(
                indices=np.array([0], dtype=np.int64),
                values=np.array([1.0], dtype=np.float64),
                dimension=self.input_dim,
            ),
            labels=np.zeros(0, dtype=np.int64),
        )
        self._executor: ThreadPoolExecutor | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False
        self._stopped = False

    def _breaker_recorder(self, name: str) -> Callable[[str, str, float], None]:
        def record(old: str, new: str, at: float) -> None:
            self.metrics.record_transition("breaker", name, old, new, at)

        return record

    # ------------------------------------------------------------------
    # ServingRuntime-compatible introspection surface
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServingConfig:
        """The front-end-facing knobs (``top_k``, ``max_body_bytes``, ...)."""
        return self.serving_config

    @property
    def input_dim(self) -> int:
        return self.replicas[0].runtime.input_dim

    def alive_workers(self) -> int:
        return sum(replica.runtime.alive_workers() for replica in self.replicas)

    def readiness(self) -> tuple[bool, str]:
        """Ready iff at least one replica passed its last readiness check."""
        if self._stopped:
            return False, "stopped"
        if not self._started:
            return False, "not started"
        ready = [r.name for r in self.replicas if r.health.ready and not r.killed]
        if ready:
            return True, "ok"
        details = ", ".join(
            f"{r.name}: {r.health.detail}" for r in self.replicas
        )
        return False, f"no ready replica ({details})"

    def replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica named {name!r}")

    def kill_replica(self, name: str) -> None:
        """Chaos hook: hard-stop one replica (health checks will notice)."""
        self.replica(name).kill()

    def stats(self) -> dict[str, object]:
        snapshot: dict[str, object] = self.metrics.snapshot()
        snapshot["degradation_level"] = float(self.degradation.level)
        snapshot["degradation_max_level"] = float(self.degradation.max_level)
        snapshot["alive_workers"] = float(self.alive_workers())
        replicas: dict[str, object] = {}
        for replica in self.replicas:
            replicas[replica.name] = {
                "live": replica.health.live,
                "ready": replica.health.ready,
                "detail": replica.health.detail,
                "breaker": replica.breaker.state,
                "killed": replica.killed,
                "queue_pending": float(replica.queue_depth()),
                "alive_workers": float(replica.runtime.alive_workers()),
                "checkpoint_version": replica.runtime.watcher.current_version,
            }
        snapshot["replicas"] = replicas
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaRouter":
        if self._stopped:
            # Lifecycle misuse by the embedding program, not a request-path
            # failure — a typed 5xx here would be misleading.
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError(
                "router cannot be restarted after stop(); build a new one"
            )
        if self._started:
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError("router already started")
        for replica in self.replicas:
            replica.runtime.start()
        self._started = True
        self.check_health_once()
        self._executor = ThreadPoolExecutor(
            max_workers=_ROUTER_MAX_INFLIGHT, thread_name_prefix="router"
        )
        self._thread = threading.Thread(
            target=self._control_loop, name="serving-router-control", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)
            self._executor = None
        for replica in self.replicas:
            if not replica.killed:
                replica.runtime.stop(drain=drain)
        self._started = False
        self._stopped = True

    def __enter__(self) -> "ReplicaRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _control_loop(self) -> None:
        config = self.router_config
        tick = max(
            min(config.health_interval_s, config.degradation_interval_s) / 4,
            0.01,
        )
        next_health = 0.0
        next_degradation = 0.0
        while not self._stop_event.wait(tick):
            now = time.monotonic()
            if now >= next_health:
                next_health = now + config.health_interval_s
                self.check_health_once()
            if now >= next_degradation:
                next_degradation = now + config.degradation_interval_s
                self.degradation.step()

    # ------------------------------------------------------------------
    # Health checking
    # ------------------------------------------------------------------
    def check_health_once(self) -> dict[str, ReplicaHealth]:
        """Synchronously probe every replica (what the control thread runs)."""
        results: dict[str, ReplicaHealth] = {}
        for replica in self.replicas:
            live, ready, detail = self._probe_replica(replica)
            self._update_health(replica, live, ready, detail)
            results[replica.name] = replica.health
        return results

    def _probe_replica(self, replica: Replica) -> tuple[bool, bool, str]:
        runtime = replica.runtime
        ready, detail = runtime.readiness(
            max_staleness=self.router_config.readiness_max_staleness
        )
        if detail in ("stopped", "not started"):
            return False, False, detail
        # Liveness is behavioural: submit a probe and require an answer
        # within the timeout.  An *error* answer still proves the replica
        # responds (a crashing engine is the breaker's problem, not a
        # liveness failure); only silence is death.
        try:
            future = runtime.submit(self._probe_example, k=1)
        except RejectedError:
            # Queue full: overloaded but demonstrably answering.
            return True, ready, detail if not ready else "ok"
        except RuntimeError as exc:
            return False, False, f"probe submit failed: {exc}"
        try:
            future.result(timeout=self.router_config.probe_timeout_s)
        except FutureTimeoutError:
            future.cancel()
            return False, False, "probe timed out"
        except CancelledError:
            return False, False, "probe cancelled"
        # An error *response* still proves liveness; a crash-looping engine
        # is the circuit breaker's jurisdiction, not the health checker's.
        except Exception:  # repro: allow[exc] error response proves liveness
            pass
        return True, ready, detail if not ready else "ok"

    def _update_health(
        self, replica: Replica, live: bool, ready: bool, detail: str
    ) -> None:
        at = time.monotonic()
        old = replica.health
        if old.live != live:
            self.metrics.record_transition("live", replica.name, old.live, live, at)
        if old.ready != ready:
            self.metrics.record_transition(
                "ready", replica.name, old.ready, ready, at
            )
        replica.health = ReplicaHealth(
            live=live, ready=ready, detail=detail, checked_at=at
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _candidates(self) -> list[Replica]:
        ready = [r for r in self.replicas if not r.killed and r.health.ready]
        if ready:
            return ready
        # Degraded cluster: merely-live replicas (e.g. stale checkpoints
        # everywhere) still beat failing the request outright.
        return [r for r in self.replicas if not r.killed and r.health.live]

    def _choose(self, exclude: set[str]) -> Replica | None:
        pool = [r for r in self._candidates() if r.name not in exclude]
        if not pool:
            # Every candidate was already tried this request; allow repeats
            # rather than failing with attempts still in budget.
            pool = self._candidates()
        pool = [r for r in pool if r.breaker.state != BREAKER_OPEN]
        if not pool:
            return None
        if len(pool) == 1:
            pick = pool[0]
        else:
            with self._rng_lock:
                first, second = self._rng.sample(pool, 2)
            pick = first if first.queue_depth() <= second.queue_depth() else second
        if pick.breaker.allow():
            return pick
        # The pick was half-open and out of probe slots; any sibling whose
        # breaker admits traffic is better than rejecting.
        for replica in pool:
            if replica is not pick and replica.breaker.allow():
                return replica
        return None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, example: SparseExample, k: int | None = None) -> Future:
        """Async surface for open-loop clients; resolves to a Prediction."""
        if not self._started or self._stopped or self._executor is None:
            raise NotServingError("router is not started")
        return self._executor.submit(self.predict, example, k)

    def predict_many(
        self,
        examples: list[SparseExample],
        k: int | None = None,
        timeout: float = 60.0,
    ) -> list[Prediction]:
        futures = [self.submit(example, k=k) for example in examples]
        return [future.result(timeout=timeout) for future in futures]

    def predict(
        self,
        example: SparseExample,
        k: int | None = None,
        timeout: float | None = None,
    ) -> Prediction:
        """Route one predict with retries under a total deadline budget.

        Raises :class:`ReplicaUnavailableError` when no replica can take
        the request at all, :class:`RejectedError` when the degradation
        ladder is shedding (or every attempt was shed), and
        :class:`RetriesExhaustedError` when the attempt/deadline budget ran
        out on real failures.
        """
        if not self._started or self._stopped:
            raise NotServingError("router is not started")
        config = self.router_config
        start = time.monotonic()
        deadline = start + (
            config.request_deadline_s if timeout is None else float(timeout)
        )
        attempts = 0
        last_error: BaseException | None = None
        non_shed_failure = False
        tried: set[str] = set()
        backoff = config.retry_backoff_base_s
        last_replica: Replica | None = None
        while attempts < config.retry_max_attempts:
            now = time.monotonic()
            if now >= deadline:
                break
            replica = self._choose(tried)
            if replica is None:
                if attempts == 0:
                    self.metrics.record_outcome(ReplicaUnavailableError.cause)
                    raise ReplicaUnavailableError(
                        "all replicas down or circuit-open"
                    )
                break
            if self.degradation.shed_active():
                depth = replica.queue_depth()
                if depth >= config.degradation_shed_depth:
                    self.metrics.record_outcome("shed")
                    raise RejectedError(
                        retry_after_s=config.degradation_interval_s,
                        pending=depth,
                    )
            attempts += 1
            if attempts > 1:
                self.metrics.record_retry(failover=replica is not last_replica)
            last_replica = replica
            self.metrics.record_attempt(replica.name)
            attempt_timeout = min(config.attempt_timeout_s, deadline - now)
            attempt_start = time.monotonic()
            try:
                future = replica.runtime.submit(example, k=k)
                prediction = future.result(timeout=attempt_timeout)
            except RejectedError as exc:
                # The replica shed at admission: overload, not a fault — no
                # breaker hit, no backoff, immediately try a sibling.
                self.metrics.record_attempt_failure(replica.name, exc.cause)
                last_error = exc
                tried.add(replica.name)
                continue
            except DeadlineExceededError as exc:
                # Dropped in the replica's queue: also overload-shaped.
                self.metrics.record_attempt_failure(replica.name, exc.cause)
                last_error = exc
                non_shed_failure = True
                tried.add(replica.name)
                continue
            except ValueError:
                # Invalid k / dimension mismatch: the caller's bug, never
                # retryable and never the replica's fault.
                raise
            except FutureTimeoutError:
                # Hang: the attempt timeout already spent our patience —
                # fail over immediately, no extra backoff.
                future.cancel()
                replica.breaker.record_failure()
                self.metrics.record_attempt_failure(replica.name, "timeout")
                last_error = TimeoutError(
                    f"attempt on {replica.name} exceeded "
                    f"{attempt_timeout * 1e3:.0f}ms"
                )
                non_shed_failure = True
                tried.add(replica.name)
                continue
            except CancelledError as exc:
                # Replica stopped mid-request (kill / shutdown).
                replica.breaker.record_failure()
                self.metrics.record_attempt_failure(replica.name, "cancelled")
                last_error = exc
                non_shed_failure = True
                tried.add(replica.name)
                continue
            except Exception as exc:  # noqa: BLE001 - every engine fault retries
                replica.breaker.record_failure()
                self.metrics.record_attempt_failure(
                    replica.name, type(exc).__name__
                )
                last_error = exc
                non_shed_failure = True
                tried.add(replica.name)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(backoff, remaining))
                backoff = min(backoff * 2, config.retry_backoff_max_s)
                continue
            replica.breaker.record_success(
                latency_s=time.monotonic() - attempt_start
            )
            self.metrics.record_outcome("ok", latency_s=time.monotonic() - start)
            return replace(
                prediction,
                replica=replica.name,
                degradation=self.degradation.level,
            )
        if not non_shed_failure and isinstance(last_error, RejectedError):
            # Every attempt was shed: propagate the overload signal (with
            # its retry hint) instead of dressing it up as a failure.
            self.metrics.record_outcome("shed")
            raise last_error
        self.metrics.record_outcome(RetriesExhaustedError.cause)
        raise RetriesExhaustedError(attempts, last_error)
