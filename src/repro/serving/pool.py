"""Multi-worker engine pool and the serving runtime facade.

:class:`EnginePool` hosts ``N`` worker threads (on
:class:`repro.parallel.executor.WorkerPool`) that each loop: pull a
micro-batch from the shared :class:`~repro.serving.batching.MicroBatchQueue`,
run it through the (shared, read-only) inference engine, resolve the
per-request futures, and record latency/throughput metrics.  NumPy releases
the GIL inside the matrix kernels that dominate inference, so workers
genuinely overlap.

:class:`ServingRuntime` is the facade the HTTP front-end, the examples and
the tests use: it wires queue + pool + metrics together from a
:class:`~repro.config.ServingConfig` and exposes ``submit`` / ``predict`` /
``predict_many`` plus a ``stats()`` snapshot.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Sequence

from dataclasses import replace

from repro.config import ServingConfig
from repro.core.network import SlideNetwork
from repro.parallel.executor import WorkerPool
from repro.serving.batching import InferenceRequest, MicroBatchQueue
from repro.serving.engine import (
    DenseInferenceEngine,
    InferenceEngine,
    Prediction,
    SparseInferenceEngine,
)
from repro.serving.errors import (
    DeadlineExceededError,
    NotServingError,
    RejectedError,
)
from repro.serving.metrics import ServingMetrics
from repro.types import SparseExample
from repro.utils import sanitize

__all__ = ["EnginePool", "ServingRuntime", "build_engine"]


def build_engine(network: SlideNetwork, config: ServingConfig) -> InferenceEngine:
    """Instantiate the engine described by ``config`` for ``network``.

    Asks for the sparse engine but the network has no LSH-enabled output
    layer?  Serve dense rather than fail — the knob is an optimisation.
    """
    if config.engine == "sparse" and network.output_layer.lsh_index is not None:
        return SparseInferenceEngine(network, active_budget=config.active_budget)
    return DenseInferenceEngine(network)


class EnginePool:
    """Worker threads draining one micro-batch queue into one engine."""

    def __init__(
        self,
        engine: InferenceEngine,
        request_queue: MicroBatchQueue,
        metrics: ServingMetrics,
        num_workers: int = 2,
        poll_timeout: float = 0.05,
    ) -> None:
        self.engine = engine
        self.queue = request_queue
        self.metrics = metrics
        self.poll_timeout = float(poll_timeout)
        self._pool = WorkerPool(num_workers, name="serving-engine")
        self._stopping = False
        self._drain_on_stop = True

    @property
    def num_workers(self) -> int:
        return self._pool.num_workers

    def start(self) -> None:
        self.metrics.throughput.start()
        self._pool.start(self._worker_loop)

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the workers.

        With ``drain=True`` (default) queued requests are served first;
        with ``drain=False`` workers stop after their in-flight batch and
        every request still queued has its future cancelled, so no caller
        is left blocking on an answer that will never come.
        """
        self.queue.close()
        self._drain_on_stop = drain
        if drain:
            deadline = time.monotonic() + timeout
            while self.queue.pending() and time.monotonic() < deadline:
                sanitize.note_blocking("EnginePool.stop drain wait")
                time.sleep(self.poll_timeout / 2)
        self._stopping = True
        try:
            # join() re-raises the first exception any worker loop died
            # with (WorkerPool surfaces crashes instead of leaving dead
            # threads); the cancellation sweep below must still run in that
            # case, or every queued caller blocks forever on a future that
            # no worker will ever resolve.
            self._pool.join(timeout=timeout)
        finally:
            # Anything still queued (drain=False, the drain timed out, or a
            # crashed worker) is cancelled rather than abandoned.
            while True:
                batch = self.queue.next_batch(timeout=0.0)
                if not batch:
                    break
                for request in batch:
                    request.future.cancel()

    def alive_workers(self) -> int:
        return self._pool.alive_count()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_index: int) -> None:
        while not self._stopping:
            batch = self.queue.next_batch(timeout=self.poll_timeout)
            if not batch:
                continue
            self._serve_batch(batch, worker_index)
        # Final drain (draining stop only) so no accepted request is left
        # unresolved; stop() has already waited for the queue to empty, so
        # this serves at most the handful of stragglers.
        while self._drain_on_stop:
            batch = self.queue.next_batch(timeout=0.0)
            if not batch:
                break
            self._serve_batch(batch, worker_index)

    def _serve_batch(self, batch: list[InferenceRequest], worker_index: int) -> None:
        # Deadline-expired requests are failed *before* compute: engine time
        # spent on an answer the client has abandoned only deepens the
        # overload.  They don't count as errors — the shed counter is theirs.
        live: list[InferenceRequest] = []
        for request in batch:
            if request.expired():
                self.metrics.record_shed(DeadlineExceededError.cause)
                if request.future.set_running_or_notify_cancel():
                    assert request.deadline_s is not None
                    request.future.set_exception(
                        DeadlineExceededError(
                            waited_s=request.latency(),
                            deadline_s=request.deadline_s,
                        )
                    )
            else:
                live.append(request)
        if not live:
            return
        self.metrics.record_batch(len(live))
        try:
            # One engine call serves the whole micro-batch; requests may ask
            # for different k, so score for the largest and trim per request
            # (predictions are sorted by descending score).  The guarded path
            # runs under the hot-swap read lock and stamps each answer with
            # the weight generation that produced it.
            max_k = max(request.k for request in live)
            predictions = self.engine.predict_batch_guarded(
                [request.example for request in live], k=max_k
            )
        except BaseException as exc:  # noqa: BLE001 - must reach the futures
            for request in live:
                self.metrics.record_error()
                if not request.future.set_running_or_notify_cancel():
                    continue
                request.future.set_exception(exc)
            return
        for request, prediction in zip(live, predictions):
            if request.k < prediction.class_ids.shape[0]:
                prediction = replace(
                    prediction,
                    class_ids=prediction.class_ids[: request.k],
                    scores=prediction.scores[: request.k],
                )
            if not request.future.set_running_or_notify_cancel():
                continue
            request.future.set_result(prediction)
            self.metrics.record_request(
                request.latency(), prediction.mode, worker_index=worker_index
            )


class ServingRuntime:
    """Queue + engine pool + metrics, assembled from a :class:`ServingConfig`."""

    def __init__(
        self,
        engine: InferenceEngine,
        config: ServingConfig | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.engine = engine
        self.metrics = ServingMetrics()
        self.queue = MicroBatchQueue(
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            capacity=self.config.queue_capacity,
            policy=self.config.admission_policy,
            # Retry-after for shed requests = backlog / measured drain rate.
            drain_rate=self.metrics.throughput.requests_per_second,
        )
        self.pool = self._build_pool()
        self._started = False
        self._stopped = False

    def _build_pool(self) -> EnginePool:
        """Pool factory — :class:`~repro.serving.runtime.OnlineRuntime`
        overrides this to substitute an elastic pool."""
        return EnginePool(
            self.engine,
            self.queue,
            self.metrics,
            num_workers=self.config.num_workers,
        )

    @classmethod
    def from_network(
        cls, network: SlideNetwork, config: ServingConfig | None = None
    ) -> "ServingRuntime":
        config = config or ServingConfig()
        return cls(build_engine(network, config), config)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingRuntime":
        if self._stopped:
            # The queue is closed and the worker threads have exited; both
            # are single-use, so a stopped runtime cannot come back.
            # Lifecycle misuse by the embedding program, not a request-path
            # failure — a typed 5xx here would be misleading.
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError(
                "runtime cannot be restarted after stop(); build a new one"
            )
        if self._started:
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError("runtime already started")
        self._started = True
        self.pool.start()
        return self

    def stop(self, drain: bool = True) -> None:
        if self._started:
            try:
                self.pool.stop(drain=drain)
            finally:
                # pool.stop() re-raises a crashed worker's exception; the
                # runtime must still transition to stopped, or submit()'s
                # fail-fast guard would keep accepting requests that no
                # worker will ever serve.
                self._started = False
                self._stopped = True

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, example: SparseExample, k: int | None = None) -> Future:
        """Enqueue one request; resolves to a :class:`Prediction`."""
        if not self._started:
            # Without workers the future would never resolve; fail fast
            # instead of letting predict() block until its timeout.
            raise NotServingError("runtime is not started")
        # Validate k fully at submission time: inside a worker, an invalid k
        # would only surface from the engine's batch call and fail every
        # request co-batched with the bad one.  ("k or default" is also the
        # wrong tool here — it silently turns an explicit k=0 into top_k.)
        resolved = self.config.top_k if k is None else int(k)
        if resolved <= 0:
            raise ValueError("k must be positive")
        if resolved > self.engine.output_dim:
            raise ValueError(
                f"k={resolved} exceeds the number of output classes "
                f"({self.engine.output_dim})"
            )
        input_dim = self.engine.network.input_dim
        if example.features.dimension != input_dim:
            raise ValueError(
                f"example dimension {example.features.dimension} does not "
                f"match the model's input_dim {input_dim}"
            )
        deadline_s = (
            None if self.config.deadline_ms is None else self.config.deadline_ms / 1e3
        )
        try:
            return self.queue.submit(example, k=resolved, deadline_s=deadline_s)
        except RejectedError as exc:
            self.metrics.record_shed(exc.cause)
            raise

    def predict(
        self, example: SparseExample, k: int | None = None, timeout: float = 30.0
    ) -> Prediction:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(example, k=k).result(timeout=timeout)

    def predict_many(
        self,
        examples: Sequence[SparseExample],
        k: int | None = None,
        timeout: float = 60.0,
    ) -> list[Prediction]:
        """Submit many requests and wait for all answers (in input order)."""
        futures = [self.submit(example, k=k) for example in examples]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        return self.engine.network.input_dim

    def alive_workers(self) -> int:
        """Worker threads currently alive (0 before start / after stop)."""
        if not self._started:
            return 0
        return self.pool.alive_workers()

    def readiness(self) -> tuple[bool, str]:
        """Can this runtime answer a predict right now?

        Liveness (the process responding) and readiness (able to serve)
        are different questions: a started runtime whose workers all died
        — or were resized away — is alive but must not receive traffic.
        Returns ``(ready, detail)`` so front-ends can surface the cause.
        """
        if self._stopped:
            return False, "stopped"
        if not self._started:
            return False, "not started"
        if self.pool.alive_workers() == 0:
            return False, "no alive workers"
        return True, "ok"

    def stats(self) -> dict[str, object]:
        snapshot = self.metrics.snapshot()
        snapshot["engine"] = self.engine.name
        snapshot["generation"] = float(self.engine.generation)
        snapshot["num_workers"] = float(self.pool.num_workers)
        snapshot["alive_workers"] = float(self.pool.alive_workers())
        snapshot["queue_pending"] = float(self.queue.pending())
        if isinstance(self.engine, SparseInferenceEngine):
            snapshot["fallback_rate"] = self.engine.fallback_rate()
            budget = self.engine.active_budget
            snapshot["active_budget"] = float(budget) if budget is not None else -1.0
        return snapshot
