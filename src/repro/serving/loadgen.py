"""Open-loop load generation against a serving runtime.

A *closed-loop* client (send, wait, send again) self-throttles when the
server slows down, which hides tail latency exactly when it matters.  The
generator here is **open-loop**: request ``i`` is submitted at
``start + i / qps`` regardless of how many earlier requests have completed,
so a server that cannot sustain the offered rate builds a real backlog and
its admission control actually gets exercised — the methodology behind
every serious serving benchmark.

Shed requests are *expected* output under overload, not failures: the
report separates completed requests (with client-observed latency
percentiles from a raw-sample reservoir), sheds by cause (``queue_full``
at admission, ``deadline`` in queue), and genuine errors.  Every failure
is additionally bucketed into a four-way taxonomy — ``rejected`` (load
shed), ``deadline`` (expired in queue), ``transport`` (the serving side
went away: cancelled futures, exhausted retries, no replica), ``other`` —
and every success is attributed to the replica and weight generation that
served it plus the degradation level it was served under, which is what
lets the failover bench say *which* replica's death cost *which* requests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.perf.latency import LatencyHistogram
from repro.serving.errors import (
    DeadlineExceededError,
    RejectedError,
    ReplicaUnavailableError,
    RetriesExhaustedError,
    ServingError,
)
from repro.serving.pool import ServingRuntime
from repro.types import SparseExample

__all__ = ["LoadReport", "run_open_loop", "classify_failure"]

_REPORT_RESERVOIR = 8192


def classify_failure(exc: BaseException) -> str:
    """Four-way failure taxonomy: rejected / deadline / transport / other."""
    if isinstance(exc, RejectedError):
        return "rejected"
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(
        exc,
        (
            ReplicaUnavailableError,
            RetriesExhaustedError,
            CancelledError,
            TimeoutError,
            ConnectionError,
            RuntimeError,
        ),
    ):
        return "transport"
    return "other"


@dataclass
class LoadReport:
    """Outcome of one open-loop run at a fixed offered rate."""

    offered_qps: float
    duration_s: float
    sent: int = 0
    completed: int = 0
    errors: int = 0
    sheds: dict[str, int] = field(default_factory=dict)
    failure_causes: dict[str, int] = field(default_factory=dict)
    generations: dict[int, int] = field(default_factory=dict)
    replicas: dict[str, int] = field(default_factory=dict)
    degradations: dict[int, int] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    max_schedule_lag_s: float = 0.0

    @property
    def attempts(self) -> int:
        return self.sent + self.shed_total

    @property
    def shed_total(self) -> int:
        return sum(self.sheds.values())

    @property
    def shed_rate(self) -> float:
        attempts = self.attempts
        return self.shed_total / attempts if attempts else 0.0

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable view (what the bench artifact stores)."""
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "sheds": dict(self.sheds),
            "shed_rate": self.shed_rate,
            "failure_causes": dict(self.failure_causes),
            "generations": {str(gen): n for gen, n in sorted(self.generations.items())},
            "replicas": {name: n for name, n in sorted(self.replicas.items())},
            "degradations": {
                str(level): n for level, n in sorted(self.degradations.items())
            },
            "latency_ms": {
                "p50": self.latency.get("p50_s", 0.0) * 1e3,
                "p99": self.latency.get("p99_s", 0.0) * 1e3,
                "p999": self.latency.get("p999_s", 0.0) * 1e3,
                "mean": self.latency.get("mean_s", 0.0) * 1e3,
                "max": self.latency.get("max_s", 0.0) * 1e3,
            },
            "max_schedule_lag_s": self.max_schedule_lag_s,
        }


def run_open_loop(
    runtime: ServingRuntime,
    examples: Sequence[SparseExample],
    qps: float,
    duration_s: float,
    k: int | None = None,
    settle_timeout_s: float = 30.0,
) -> LoadReport:
    """Drive ``runtime`` at a sustained offered rate; return a :class:`LoadReport`.

    Requests cycle through ``examples``.  Latency is *client-observed*
    (submit call to future resolution), recorded into a reservoir-backed
    histogram so the reported p99/p999 are exact for runs that fit the
    reservoir.  After the last arrival the generator waits up to
    ``settle_timeout_s`` for stragglers so the tail is not truncated.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if not examples:
        raise ValueError("need at least one example to send")

    histogram = LatencyHistogram(reservoir_size=_REPORT_RESERVOIR)
    report = LoadReport(offered_qps=float(qps), duration_s=float(duration_s))
    lock = threading.Lock()
    outstanding: list = []

    def on_done(submitted_at: float, future) -> None:
        observed = time.monotonic() - submitted_at
        try:
            prediction = future.result()
        except (RejectedError, DeadlineExceededError) as exc:
            # Overload outcomes (shed at admission or in a router retry
            # chain, dropped in queue) are sheds, not failures.
            with lock:
                report.sheds[exc.cause] = report.sheds.get(exc.cause, 0) + 1
                cause = classify_failure(exc)
                report.failure_causes[cause] = (
                    report.failure_causes.get(cause, 0) + 1
                )
            return
        except (CancelledError, Exception) as exc:  # noqa: BLE001 - bench counts, not raises
            with lock:
                report.errors += 1
                cause = classify_failure(exc)
                report.failure_causes[cause] = (
                    report.failure_causes.get(cause, 0) + 1
                )
            return
        histogram.record(observed)
        with lock:
            report.completed += 1
            generation = prediction.generation
            report.generations[generation] = (
                report.generations.get(generation, 0) + 1
            )
            # Routed answers carry the serving replica and the degradation
            # ladder level; direct runtime answers attribute to "local".
            replica = prediction.replica or "local"
            report.replicas[replica] = report.replicas.get(replica, 0) + 1
            level = prediction.degradation
            report.degradations[level] = report.degradations.get(level, 0) + 1

    total = max(int(duration_s * qps), 1)
    start = time.monotonic()
    for i in range(total):
        target = start + i / qps
        now = time.monotonic()
        if target > now:
            time.sleep(target - now)
        else:
            # Open loop: a late arrival is sent immediately, never skipped —
            # the lag is reported so a saturated *generator* is visible.
            report.max_schedule_lag_s = max(report.max_schedule_lag_s, now - target)
        example = examples[i % len(examples)]
        submitted_at = time.monotonic()
        try:
            future = runtime.submit(example, k=k)
        except RejectedError as exc:
            with lock:
                report.sheds[exc.cause] = report.sheds.get(exc.cause, 0) + 1
                report.failure_causes["rejected"] = (
                    report.failure_causes.get("rejected", 0) + 1
                )
            continue
        except ServingError as exc:
            # Typed serving failures at admission (e.g. the router finding
            # no replica) count against the taxonomy but keep the loop
            # going — the scenario may recover mid-run.
            with lock:
                report.errors += 1
                cause = classify_failure(exc)
                report.failure_causes[cause] = (
                    report.failure_causes.get(cause, 0) + 1
                )
            continue
        except RuntimeError:
            # Runtime shut down mid-run (e.g. a bench tearing down early).
            break
        report.sent += 1
        future.add_done_callback(
            lambda fut, t0=submitted_at: on_done(t0, fut)
        )
        outstanding.append(future)

    settle_deadline = time.monotonic() + settle_timeout_s
    for future in outstanding:
        remaining = settle_deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            future.result(timeout=remaining)
        except Exception:  # repro: allow[exc] outcome already counted in on_done
            pass

    report.latency = histogram.summary()
    return report
