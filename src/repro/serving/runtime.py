"""The online train-to-serve loop: hot reload, autoscaling, elastic workers.

This module closes the lifecycle gap left by the static PR 1 server: a
trainer keeps publishing checkpoint versions into a
:class:`~repro.serving.checkpoint.CheckpointStore`, and a running
:class:`OnlineRuntime` picks each one up *without restarting* — no second
process, no connection draining, no cold LSH rebuild:

* :class:`CheckpointWatcher` polls the store; when a new version appears it
  pins the version (so a concurrent ``prune`` cannot delete it mid-read),
  loads it, and hands the network to
  :meth:`~repro.serving.engine.InferenceEngine.hot_swap`, which diffs the
  incoming weights against the resident ones and patches the LSH tables
  through the incremental ``update(dirty)`` path.  In-flight batches finish
  on the old generation; requests admitted afterwards see the new one.
* :class:`ElasticEnginePool` replaces the fixed
  :class:`~repro.serving.pool.EnginePool` thread set with workers that can
  be added and retired at runtime (``resize``), which is what the
  autoscaler actuates.
* :class:`AutoscaleController` samples recent p99 (from the metrics
  latency window) and queue depth each control period and votes the pool up
  or down with hysteresis: scale up after ``autoscale_up_patience``
  consecutive overloaded samples, down only after
  ``autoscale_down_patience`` consecutive idle ones, with a cooldown
  between actions so the pool never flaps.
* :class:`OnlineRuntime` wires all of the above behind the same
  ``submit``/``predict`` surface as :class:`~repro.serving.pool.ServingRuntime`.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.config import ServingConfig
from repro.faults import InjectedFault
from repro.serving.checkpoint import (
    CheckpointError,
    CheckpointStore,
    load_checkpoint,
)
from repro.serving.engine import InferenceEngine, SwapReport
from repro.serving.metrics import ServingMetrics
from repro.serving.pool import EnginePool, ServingRuntime, build_engine
from repro.serving.batching import MicroBatchQueue
from repro.utils import sanitize

__all__ = [
    "ElasticEnginePool",
    "AutoscaleController",
    "CheckpointWatcher",
    "OnlineRuntime",
]

_MAX_AUTOSCALE_HISTORY = 1024


class ElasticEnginePool(EnginePool):
    """An :class:`EnginePool` whose worker count can change at runtime.

    Workers get monotonically increasing indices (so per-worker metrics
    never alias across a shrink/grow cycle) and an individual stop event:
    ``resize`` retires the newest workers first, each finishing its
    in-flight batch before exiting.  Retired threads are reaped lazily and
    joined at :meth:`stop`.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        request_queue: MicroBatchQueue,
        metrics: ServingMetrics,
        num_workers: int = 2,
        poll_timeout: float = 0.05,
    ) -> None:
        super().__init__(
            engine,
            request_queue,
            metrics,
            num_workers=num_workers,
            poll_timeout=poll_timeout,
        )
        # The WorkerPool the base class built is unused: elasticity needs
        # per-thread lifecycles, which its all-or-nothing start/join cannot
        # express.
        self._initial_workers = int(num_workers)
        self._threads: dict[int, tuple[threading.Thread, threading.Event]] = {}
        self._retired: list[threading.Thread] = []
        self._next_index = 0
        self._resize_lock = sanitize.lock("serving.pool.resize")
        self._elastic_started = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        with self._resize_lock:
            return len(self._threads)

    def alive_workers(self) -> int:
        with self._resize_lock:
            return sum(
                1 for thread, _ in self._threads.values() if thread.is_alive()
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.metrics.throughput.start()
        with self._resize_lock:
            self._elastic_started = True
            for _ in range(self._initial_workers):
                self._spawn_locked()

    def resize(self, target: int) -> int:
        """Grow or shrink to ``target`` workers; returns the new count.

        ``target=0`` is allowed — a deliberately drained pool is how tests
        (and operators) force the not-ready state without killing the
        process; requests queue until a later ``resize`` restores workers.
        """
        target = max(0, int(target))
        with self._resize_lock:
            if not self._elastic_started or self._stopping:
                return len(self._threads)
            while len(self._threads) < target:
                self._spawn_locked()
            while len(self._threads) > target:
                # Retire newest-first: oldest workers keep their warmed-up
                # metrics history.
                index = max(self._threads)
                thread, stop_event = self._threads.pop(index)
                stop_event.set()
                self._retired.append(thread)
            self._retired = [t for t in self._retired if t.is_alive()]
            return len(self._threads)

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        self.queue.close()
        self._drain_on_stop = drain
        if drain:
            deadline = time.monotonic() + timeout
            while self.queue.pending() and time.monotonic() < deadline:
                sanitize.note_blocking("ElasticEnginePool.stop drain wait")
                time.sleep(self.poll_timeout / 2)
        self._stopping = True
        with self._resize_lock:
            threads = [thread for thread, _ in self._threads.values()]
            threads.extend(self._retired)
            self._threads.clear()
            self._retired.clear()
        try:
            join_deadline = time.monotonic() + timeout
            for thread in threads:
                thread.join(timeout=max(join_deadline - time.monotonic(), 0.1))
        finally:
            # Anything still queued (drain=False or the drain timed out) is
            # cancelled rather than abandoned.
            while True:
                batch = self.queue.next_batch(timeout=0.0)
                if not batch:
                    break
                for request in batch:
                    request.future.cancel()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _spawn_locked(self) -> None:
        index = self._next_index
        self._next_index += 1
        stop_event = threading.Event()
        thread = threading.Thread(
            target=self._elastic_loop,
            args=(index, stop_event),
            name=f"serving-elastic-{index}",
            daemon=True,
        )
        self._threads[index] = (thread, stop_event)
        thread.start()

    def _elastic_loop(self, worker_index: int, stop_event: threading.Event) -> None:
        while not self._stopping and not stop_event.is_set():
            batch = self.queue.next_batch(timeout=self.poll_timeout)
            if not batch:
                continue
            self._serve_batch(batch, worker_index)
        # Final drain mirrors EnginePool: only a *stopping* pool drains the
        # queue (a retired worker must not race the survivors for work).
        while self._stopping and self._drain_on_stop and not stop_event.is_set():
            batch = self.queue.next_batch(timeout=0.0)
            if not batch:
                break
            self._serve_batch(batch, worker_index)


class AutoscaleController:
    """Hysteresis controller sizing an :class:`ElasticEnginePool`.

    Each control period it drains the metrics latency window (recent
    traffic only — the lifetime histogram would never forgive a past
    overload) and reads the queue depth, then votes:

    * **overloaded** — window p99 above ``target_p99_ms`` *or* queue depth
      above ``autoscale_queue_per_worker × workers``;
    * **idle** — empty queue *and* p99 under half the target;
    * anything else resets both vote counters.

    Only ``autoscale_up_patience`` consecutive overloaded samples trigger a
    +1 resize (``autoscale_down_patience`` idle samples for −1), and a
    cooldown separates consecutive actions.  Down-patience is deliberately
    larger than up-patience: under-provisioning costs tail latency
    immediately, over-provisioning only costs idle threads.
    """

    def __init__(
        self,
        pool: ElasticEnginePool,
        request_queue: MicroBatchQueue,
        metrics: ServingMetrics,
        config: ServingConfig,
    ) -> None:
        self.pool = pool
        self.queue = request_queue
        self.metrics = metrics
        self.config = config
        self.history: list[dict[str, float]] = []
        self._up_votes = 0
        self._down_votes = 0
        self._last_action: float | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Decision logic (pure given signals — what the unit tests drive)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        p99_ms: float,
        queue_depth: int,
        workers: int,
        now: float | None = None,
    ) -> int:
        """Return the target worker count for the given signals."""
        cfg = self.config
        overloaded = (
            p99_ms > cfg.target_p99_ms
            or queue_depth > cfg.autoscale_queue_per_worker * workers
        )
        idle = queue_depth == 0 and p99_ms < cfg.target_p99_ms / 2
        if overloaded:
            self._up_votes += 1
            self._down_votes = 0
        elif idle:
            self._down_votes += 1
            self._up_votes = 0
        else:
            self._up_votes = 0
            self._down_votes = 0
        now = time.monotonic() if now is None else now
        cooled = (
            self._last_action is None
            or now - self._last_action >= cfg.autoscale_cooldown_s
        )
        if (
            self._up_votes >= cfg.autoscale_up_patience
            and workers < cfg.max_workers
            and cooled
        ):
            self._up_votes = 0
            self._last_action = now
            return workers + 1
        if (
            self._down_votes >= cfg.autoscale_down_patience
            and workers > cfg.min_workers
            and cooled
        ):
            self._down_votes = 0
            self._last_action = now
            return workers - 1
        return workers

    def step(self, now: float | None = None) -> dict[str, float]:
        """One control period: sample signals, decide, actuate, record."""
        window = self.metrics.take_latency_window()
        p99_ms = window.exact_percentile(99.0) * 1e3 if window.count else 0.0
        depth = self.queue.pending()
        workers = self.pool.num_workers
        target = self.evaluate(p99_ms, depth, workers, now=now)
        if target != workers:
            target = self.pool.resize(target)
        record = {
            "p99_ms": float(p99_ms),
            "queue_depth": float(depth),
            "workers_before": float(workers),
            "workers_after": float(target),
        }
        self.history.append(record)
        if len(self.history) > _MAX_AUTOSCALE_HISTORY:
            del self.history[: -_MAX_AUTOSCALE_HISTORY]
        return record

    # ------------------------------------------------------------------
    # Control thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError("autoscaler already started")
        self._thread = threading.Thread(
            target=self._run, name="serving-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.config.autoscale_interval_s):
            self.step()


class CheckpointWatcher:
    """Polls a :class:`CheckpointStore` and hot-swaps new versions in.

    The watcher pins the version directory for the duration of the load, so
    a trainer pruning old versions in another process cannot delete the one
    being read.  A version that fails to load (corrupt, shape-mismatched)
    is counted as a reload failure — by cause — and the engine keeps serving
    the resident weights; a bad publish never takes the server down.

    Failures are retried with exponential backoff (``retry_backoff_s``
    doubling per attempt): a version still mid-write when first seen gets
    another chance, but a persistently bad one is *quarantined* after
    ``max_load_attempts`` attempts and never touched again — without
    backoff, a torn final version would otherwise be re-read (and re-hashed
    against its checksum) on every poll, forever.
    """

    # Ceiling on the per-version retry delay, whatever the attempt count.
    MAX_RETRY_BACKOFF_S = 60.0

    def __init__(
        self,
        store: CheckpointStore,
        engine: InferenceEngine,
        metrics: ServingMetrics | None = None,
        poll_s: float = 1.0,
        current_version: str | None = None,
        max_load_attempts: int = 3,
        retry_backoff_s: float = 0.5,
    ) -> None:
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if max_load_attempts < 1:
            raise ValueError("max_load_attempts must be at least 1")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        self.store = store
        self.engine = engine
        self.metrics = metrics
        self.poll_s = float(poll_s)
        self.current_version = current_version
        self.max_load_attempts = int(max_load_attempts)
        self.retry_backoff_s = float(retry_backoff_s)
        self.last_report: SwapReport | None = None
        self._load_attempts: dict[str, int] = {}
        self._retry_at: dict[str, float] = {}
        self._quarantined: set[str] = set()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def quarantined_versions(self) -> frozenset[str]:
        """Version names given up on after ``max_load_attempts`` failures."""
        return frozenset(self._quarantined)

    @staticmethod
    def _classify_failure(exc: Exception) -> str:
        # CheckpointError subclasses OSError-adjacent causes are checked
        # most-specific first; the cause keys feed the per-cause reload
        # failure counters in ServingMetrics.
        if isinstance(exc, InjectedFault):
            return "injected"
        if isinstance(exc, CheckpointError):
            return "corrupt"
        if isinstance(exc, ValueError):
            return "shape_mismatch"
        if isinstance(exc, OSError):
            return "io"
        return "unknown"  # pragma: no cover - defensive

    def _record_failure(self, version: str, exc: Exception) -> None:
        attempts = self._load_attempts.get(version, 0) + 1
        self._load_attempts[version] = attempts
        if self.metrics is not None:
            self.metrics.record_reload_failure(cause=self._classify_failure(exc))
        if attempts >= self.max_load_attempts:
            self._quarantined.add(version)
            self._retry_at.pop(version, None)
        else:
            delay = min(
                self.retry_backoff_s * 2 ** (attempts - 1),
                self.MAX_RETRY_BACKOFF_S,
            )
            self._retry_at[version] = time.monotonic() + delay

    def poll_once(self) -> SwapReport | None:
        """Check the store once; swap if a new version exists.

        Returns the :class:`~repro.serving.engine.SwapReport` when a swap
        happened, ``None`` otherwise (no versions, already current, version
        quarantined or backing off, or the load failed).  Synchronous —
        tests and the bench call this directly instead of racing the poll
        thread.
        """
        try:
            latest = self.store.latest()
        except CheckpointError:
            return None
        if latest.name == self.current_version:
            return None
        if latest.name in self._quarantined:
            return None
        retry_at = self._retry_at.get(latest.name)
        if retry_at is not None and time.monotonic() < retry_at:
            return None
        try:
            injector = getattr(self.engine, "fault_injector", None)
            if injector is not None:
                injector.on_checkpoint_load(latest.name)
            with self.store.pin(latest):
                loaded = load_checkpoint(latest, load_optimizer=False)
                report = self.engine.hot_swap(loaded.network, version=latest.name)
        except (InjectedFault, CheckpointError, ValueError, OSError) as exc:
            self._record_failure(latest.name, exc)
            return None
        self._load_attempts.pop(latest.name, None)
        self._retry_at.pop(latest.name, None)
        self.current_version = latest.name
        self.last_report = report
        if self.metrics is not None:
            self.metrics.record_reload(
                version=latest.name,
                duration_s=report.duration_s,
                moved_entries=report.moved_entries,
                changed_rows=report.changed_rows,
                full_rebuild=report.full_rebuild,
            )
        return report

    # ------------------------------------------------------------------
    # Poll thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            # repro: allow[exc] lifecycle misuse, never reaches a client
            raise RuntimeError("watcher already started")
        self._thread = threading.Thread(
            target=self._run, name="serving-ckpt-watcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.poll_s):
            self.poll_once()


class OnlineRuntime(ServingRuntime):
    """A :class:`ServingRuntime` wired into the train-to-serve loop.

    Boots from ``store.latest()``, then keeps itself current: the watcher
    hot-swaps each new version the trainer publishes, and (when
    ``config.autoscale`` is set) the autoscaler resizes the elastic worker
    pool from live p99/queue-depth signals.
    """

    def __init__(
        self,
        store: CheckpointStore | str | Path,
        config: ServingConfig | None = None,
    ) -> None:
        if not isinstance(store, CheckpointStore):
            store = CheckpointStore(store)
        self.store = store
        config = config or ServingConfig()
        latest = store.latest()
        with store.pin(latest):
            loaded = load_checkpoint(latest, load_optimizer=False)
        engine = build_engine(loaded.network, config)
        super().__init__(engine, config)
        self.watcher = CheckpointWatcher(
            store,
            engine,
            metrics=self.metrics,
            poll_s=config.reload_poll_s,
            current_version=latest.name,
        )
        self.autoscaler: AutoscaleController | None = None
        if config.autoscale:
            assert isinstance(self.pool, ElasticEnginePool)
            self.autoscaler = AutoscaleController(
                self.pool, self.queue, self.metrics, config
            )

    def _build_pool(self) -> EnginePool:
        return ElasticEnginePool(
            self.engine,
            self.queue,
            self.metrics,
            num_workers=self.config.num_workers,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "OnlineRuntime":
        super().start()
        self.watcher.start()
        if self.autoscaler is not None:
            self.autoscaler.start()
        return self

    def stop(self, drain: bool = True) -> None:
        # Control loops first: a watcher mid-swap finishes (stop() joins
        # it), then the pool drains on the settled weights.
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self.watcher.stop()
        super().stop(drain=drain)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _version_number(name: str | None) -> int | None:
        if name is None:
            return None
        match = CheckpointStore._VERSION_RE.match(name)
        return int(match.group(1)) if match else None

    def checkpoint_lag(self) -> int:
        """How many versions the resident weights trail the store's latest.

        0 means current (or the store is empty / unparsable — absence of a
        newer checkpoint is not staleness).  A positive lag means the
        watcher has seen-but-not-loaded newer publishes: quarantined bad
        versions or loads still backing off.
        """
        try:
            latest = self.store.latest().name
        except CheckpointError:
            return 0
        current = self._version_number(self.watcher.current_version)
        newest = self._version_number(latest)
        if current is None or newest is None:
            return 0
        return max(0, newest - current)

    def readiness(self, max_staleness: int | None = None) -> tuple[bool, str]:
        """Readiness with checkpoint-freshness on top of the worker check.

        ``max_staleness`` bounds :meth:`checkpoint_lag`; beyond it the
        replica keeps serving (stale answers beat no answers) but reports
        not-ready so a router can drain it while the watcher recovers.
        """
        ready, detail = super().readiness()
        if not ready:
            return ready, detail
        quarantined = self.watcher.quarantined_versions
        if quarantined:
            versions = [path.name for path in self.store.versions()]
            if versions and all(name in quarantined for name in versions):
                # Every checkpoint the store still holds failed to load:
                # the resident weights are an orphan a restart could not
                # reproduce, so report unready and let the router drain us.
                return False, "all store checkpoints quarantined"
        if max_staleness is not None:
            lag = self.checkpoint_lag()
            if lag > max_staleness:
                return False, (
                    f"checkpoint {lag} versions stale "
                    f"(bound {max_staleness})"
                )
        return True, "ok"

    def stats(self) -> dict[str, object]:
        snapshot = super().stats()
        snapshot["checkpoint_version"] = self.watcher.current_version
        snapshot["checkpoint_lag"] = float(self.checkpoint_lag())
        snapshot["autoscale"] = self.autoscaler is not None
        return snapshot
