"""Stdlib HTTP/JSON front-end for a serving runtime.

A deliberately small, dependency-free server (``http.server`` +
``ThreadingHTTPServer``): each connection thread parses JSON, submits the
request to the shared :class:`~repro.serving.pool.ServingRuntime` (where the
micro-batcher coalesces it with concurrent requests), and blocks on the
future.  Endpoints:

``POST /v1/predict``
    Body ``{"indices": [...], "values": [...], "k": 5}`` → top-k ids/scores.
``GET /healthz``
    Liveness: 200 with worker counts while the pool is up.
``GET /v1/stats``
    The runtime's metrics snapshot (latency quantiles, throughput, modes).
"""

from __future__ import annotations

import json
from concurrent.futures import CancelledError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serving.errors import RejectedError, ServingError
from repro.serving.pool import ServingRuntime
from repro.types import SparseExample, SparseVector

__all__ = ["ModelServer", "build_server"]


class _Handler(BaseHTTPRequestHandler):
    # Set by build_server on the server class; typed here for clarity.
    runtime: ServingRuntime
    input_dim: int
    quiet: bool = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ValueError("empty request body")
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            alive = self.runtime.pool.alive_workers()
            status = 200 if alive > 0 else 503
            self._send_json(status, {"status": "ok" if alive else "down", "workers": alive})
        elif self.path == "/v1/stats":
            self._send_json(200, self.runtime.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/predict":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            payload = self._read_json()
            example = self._parse_example(payload)
            k = int(payload.get("k", self.runtime.config.top_k))
            prediction = self.runtime.predict(example, k=k)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            # TypeError covers client-side type mistakes like "k": null or
            # nested lists where scalars are expected — still a 400.
            self._send_json(400, {"error": str(exc)})
            return
        except RejectedError as exc:
            # Load shed at admission: 429 with a Retry-After derived from
            # the backlog, so clients back off proportionally.
            self.send_response(exc.http_status)
            body = json.dumps(
                {
                    "error": str(exc),
                    "cause": exc.cause,
                    "retry_after_s": exc.retry_after_s,
                    "pending": exc.pending,
                }
            ).encode("utf-8")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", f"{exc.retry_after_s:.3f}")
            self.end_headers()
            self.wfile.write(body)
            return
        except ServingError as exc:
            # Deadline expiry (504) and any future typed serving failure.
            self._send_json(exc.http_status, {"error": str(exc), "cause": exc.cause})
            return
        except CancelledError:
            # The pool cancelled the request mid-shutdown; CancelledError is
            # a BaseException, so without this branch the connection would
            # be dropped with no status line at all.
            self._send_json(503, {"error": "server is shutting down"})
            return
        except Exception as exc:  # noqa: BLE001 - surface engine errors as 500s
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(
            200,
            {
                "class_ids": [int(i) for i in prediction.class_ids],
                "scores": [float(s) for s in prediction.scores],
                "mode": prediction.mode,
                "candidates_scored": prediction.candidates_scored,
                "generation": prediction.generation,
            },
        )

    def _parse_example(self, payload: dict) -> SparseExample:
        indices = np.asarray(payload["indices"], dtype=np.int64)
        values = np.asarray(payload["values"], dtype=np.float64)
        features = SparseVector(
            indices=indices, values=values, dimension=self.input_dim
        )
        return SparseExample(features=features, labels=np.zeros(0, dtype=np.int64))


class ModelServer:
    """A :class:`ThreadingHTTPServer` bound to one serving runtime."""

    def __init__(
        self,
        runtime: ServingRuntime,
        host: str | None = None,
        port: int | None = None,
        quiet: bool = True,
    ) -> None:
        self.runtime = runtime
        config = runtime.config
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "runtime": runtime,
                "input_dim": runtime.engine.network.input_dim,
                "quiet": quiet,
            },
        )
        self.httpd = ThreadingHTTPServer(
            (host if host is not None else config.host,
             port if port is not None else config.port),
            handler,
        )
        # Connection threads must not keep the process alive after shutdown.
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves to a free port."""
        return self.httpd.server_address[:2]

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop and the runtime's worker pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.runtime.stop()


def build_server(
    runtime: ServingRuntime,
    host: str | None = None,
    port: int | None = None,
    quiet: bool = True,
) -> ModelServer:
    """Bind a :class:`ModelServer` for ``runtime`` (``port=0`` picks a free one)."""
    return ModelServer(runtime, host=host, port=port, quiet=quiet)
