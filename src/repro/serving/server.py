"""Stdlib HTTP/JSON front-end for a serving runtime.

A deliberately small, dependency-free server (``http.server`` +
``ThreadingHTTPServer``): each connection thread parses JSON, submits the
request to the shared :class:`~repro.serving.pool.ServingRuntime` (where the
micro-batcher coalesces it with concurrent requests), and blocks on the
future.  Endpoints:

``POST /v1/predict``
    Body ``{"indices": [...], "values": [...], "k": 5}`` → top-k ids/scores.
``GET /healthz``
    Liveness only: 200 whenever the HTTP loop answers.  A live process
    with a broken runtime should be *drained*, not restarted — that
    distinction is the readiness endpoint's job.
``GET /healthz/ready``
    Readiness: 200 when the runtime can actually serve, 503 (with a
    ``detail``) when it cannot — no alive pool workers, runtime stopped,
    or (online runtime) every checkpoint in the store quarantined.  This
    is what the replica router and external load balancers gate on.
``GET /v1/stats``
    The runtime's metrics snapshot (latency quantiles, throughput, modes).

Request bodies are bounded by ``ServingConfig.max_body_bytes``: a declared
``Content-Length`` over the limit is refused with HTTP 413 before reading a
single body byte, and a missing/non-integer/negative length is a 400.
"""

from __future__ import annotations

import json
from concurrent.futures import CancelledError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serving.errors import (
    PayloadTooLargeError,
    RejectedError,
    ServingError,
)
from repro.serving.pool import ServingRuntime
from repro.types import SparseExample, SparseVector

__all__ = ["ModelServer", "build_server"]


class _Handler(BaseHTTPRequestHandler):
    # Set by build_server on the server class; typed here for clarity.
    runtime: ServingRuntime
    input_dim: int
    quiet: bool = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        declared = self.headers.get("Content-Length", "0")
        try:
            length = int(declared)
        except (TypeError, ValueError):
            raise ValueError(f"invalid Content-Length: {declared!r}") from None
        if length < 0:
            # A negative length would make rfile.read() block until the
            # client hangs up — refuse it before touching the body.
            raise ValueError(f"invalid Content-Length: {declared!r}")
        if length == 0:
            raise ValueError("empty request body")
        limit = self.runtime.config.max_body_bytes
        if length > limit:
            raise PayloadTooLargeError(declared_bytes=length, limit_bytes=limit)
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            # Pure liveness: answering at all is the proof.
            self._send_json(
                200, {"status": "ok", "workers": self.runtime.alive_workers()}
            )
        elif self.path == "/healthz/ready":
            ready, detail = self.runtime.readiness()
            self._send_json(
                200 if ready else 503,
                {
                    "status": "ready" if ready else "unready",
                    "detail": detail,
                    "workers": self.runtime.alive_workers(),
                },
            )
        elif self.path == "/v1/stats":
            self._send_json(200, self.runtime.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/predict":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            payload = self._read_json()
            example = self._parse_example(payload)
            k = int(payload.get("k", self.runtime.config.top_k))
            prediction = self.runtime.predict(example, k=k)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            # TypeError covers client-side type mistakes like "k": null or
            # nested lists where scalars are expected — still a 400.
            self._send_json(400, {"error": str(exc)})
            return
        except RejectedError as exc:
            # Load shed at admission: 429 with a Retry-After derived from
            # the backlog, so clients back off proportionally.
            self.send_response(exc.http_status)
            body = json.dumps(
                {
                    "error": str(exc),
                    "cause": exc.cause,
                    "retry_after_s": exc.retry_after_s,
                    "pending": exc.pending,
                }
            ).encode("utf-8")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", f"{exc.retry_after_s:.3f}")
            self.end_headers()
            self.wfile.write(body)
            return
        except ServingError as exc:
            # Deadline expiry (504) and any future typed serving failure.
            self._send_json(exc.http_status, {"error": str(exc), "cause": exc.cause})
            return
        except CancelledError:
            # The pool cancelled the request mid-shutdown; CancelledError is
            # a BaseException, so without this branch the connection would
            # be dropped with no status line at all.
            self._send_json(503, {"error": "server is shutting down"})
            return
        except Exception as exc:  # noqa: BLE001 - surface engine errors as 500s
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(
            200,
            {
                "class_ids": [int(i) for i in prediction.class_ids],
                "scores": [float(s) for s in prediction.scores],
                "mode": prediction.mode,
                "candidates_scored": prediction.candidates_scored,
                "generation": prediction.generation,
            },
        )

    def _parse_example(self, payload: dict) -> SparseExample:
        indices = np.asarray(payload["indices"], dtype=np.int64)
        values = np.asarray(payload["values"], dtype=np.float64)
        features = SparseVector(
            indices=indices, values=values, dimension=self.input_dim
        )
        return SparseExample(features=features, labels=np.zeros(0, dtype=np.int64))


class ModelServer:
    """A :class:`ThreadingHTTPServer` bound to one serving runtime."""

    def __init__(
        self,
        runtime: ServingRuntime,
        host: str | None = None,
        port: int | None = None,
        quiet: bool = True,
    ) -> None:
        self.runtime = runtime
        config = runtime.config
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "runtime": runtime,
                # ServingRuntime and ReplicaRouter both expose input_dim —
                # the handler must not reach for runtime.engine, which a
                # multi-replica router does not have.
                "input_dim": runtime.input_dim,
                "quiet": quiet,
            },
        )
        self.httpd = ThreadingHTTPServer(
            (host if host is not None else config.host,
             port if port is not None else config.port),
            handler,
        )
        # Connection threads must not keep the process alive after shutdown.
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves to a free port."""
        return self.httpd.server_address[:2]

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop and the runtime's worker pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.runtime.stop()


def build_server(
    runtime: ServingRuntime,
    host: str | None = None,
    port: int | None = None,
    quiet: bool = True,
) -> ModelServer:
    """Bind a :class:`ModelServer` for ``runtime`` (``port=0`` picks a free one)."""
    return ModelServer(runtime, host=host, port=port, quiet=quiet)
