"""repro.serving — turn a trained SLIDE network into a model server.

SLIDE's thesis is that LSH-driven sparsity beats brute-force computation;
this package carries that idea from the training loop to the serving path:

* :mod:`~repro.serving.checkpoint` — versioned save/load of network weights,
  optimiser state, and LSH table contents, with checksum-verified integrity
  (:class:`CheckpointStore` numbers versions for trainer→server hand-off,
  with pin-aware ``prune`` retention);
* :mod:`~repro.serving.engine` — the LSH-budgeted
  :class:`SparseInferenceEngine` (hash-table candidate selection + exact
  top-k rerank, dense fallback) and the exact batched
  :class:`DenseInferenceEngine`, both hot-swappable in place
  (:meth:`InferenceEngine.hot_swap`, incremental LSH patch);
* :mod:`~repro.serving.batching` — a dynamic micro-batching queue
  (``max_batch_size`` / ``max_wait_ms``) with block or shed admission;
* :mod:`~repro.serving.errors` — the typed overload errors
  (:class:`RejectedError` → 429, :class:`DeadlineExceededError` → 504);
* :mod:`~repro.serving.pool` — the multi-worker :class:`EnginePool` and the
  :class:`ServingRuntime` facade, recording p50/p95/p99 latency and
  throughput via :mod:`repro.perf.latency`;
* :mod:`~repro.serving.runtime` — the online train-to-serve loop:
  :class:`CheckpointWatcher` (zero-downtime hot reload),
  :class:`ElasticEnginePool` + :class:`AutoscaleController` (worker
  autoscaling with hysteresis), wired together by :class:`OnlineRuntime`;
* :mod:`~repro.serving.router` — resilient multi-replica serving:
  :class:`ReplicaRouter` fronts N :class:`OnlineRuntime` replicas with
  active health checks, power-of-two-choices routing, cross-replica
  retries, per-replica :class:`CircuitBreaker`\\ s, and a graceful
  degradation ladder (:class:`DegradationController`);
* :mod:`~repro.serving.loadgen` — open-loop sustained-QPS load generation
  for the serving benchmarks;
* :mod:`~repro.serving.server` — a stdlib HTTP/JSON front-end, with a CLI
  entry point (``python -m repro.serving`` / ``repro-serve``).

Quickstart::

    from repro.serving import save_checkpoint, load_checkpoint, ServingRuntime

    save_checkpoint("ckpt", network, optimizer)
    loaded = load_checkpoint("ckpt")
    with ServingRuntime.from_network(loaded.network) as runtime:
        prediction = runtime.predict(example, k=5)
"""

from repro.serving.batching import InferenceRequest, MicroBatchQueue
from repro.serving.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointExistsError,
    CheckpointStore,
    LoadedCheckpoint,
    load_checkpoint,
    restore_checkpoint_into,
    save_checkpoint,
    verify_checkpoint,
)
from repro.serving.engine import (
    DenseInferenceEngine,
    InferenceEngine,
    Prediction,
    SparseInferenceEngine,
    SwapReport,
)
from repro.serving.errors import (
    DeadlineExceededError,
    PayloadTooLargeError,
    RejectedError,
    ReplicaUnavailableError,
    RetriesExhaustedError,
    ServingError,
)
from repro.serving.loadgen import LoadReport, run_open_loop
from repro.serving.metrics import RouterMetrics, ServingMetrics
from repro.serving.pool import EnginePool, ServingRuntime, build_engine
from repro.serving.router import (
    CircuitBreaker,
    DegradationController,
    Replica,
    ReplicaHealth,
    ReplicaRouter,
)
from repro.serving.runtime import (
    AutoscaleController,
    CheckpointWatcher,
    ElasticEnginePool,
    OnlineRuntime,
)
from repro.serving.server import ModelServer, build_server

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointExistsError",
    "CheckpointStore",
    "LoadedCheckpoint",
    "load_checkpoint",
    "restore_checkpoint_into",
    "save_checkpoint",
    "verify_checkpoint",
    "InferenceRequest",
    "MicroBatchQueue",
    "DenseInferenceEngine",
    "InferenceEngine",
    "Prediction",
    "SparseInferenceEngine",
    "SwapReport",
    "ServingError",
    "RejectedError",
    "DeadlineExceededError",
    "PayloadTooLargeError",
    "ReplicaUnavailableError",
    "RetriesExhaustedError",
    "ServingMetrics",
    "RouterMetrics",
    "EnginePool",
    "ServingRuntime",
    "build_engine",
    "CircuitBreaker",
    "DegradationController",
    "Replica",
    "ReplicaHealth",
    "ReplicaRouter",
    "AutoscaleController",
    "CheckpointWatcher",
    "ElasticEnginePool",
    "OnlineRuntime",
    "LoadReport",
    "run_open_loop",
    "ModelServer",
    "build_server",
]
