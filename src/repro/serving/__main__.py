"""CLI entry point: ``python -m repro.serving`` / ``repro-serve``.

Loads a checkpoint, assembles the serving runtime described by the command
line, and serves HTTP until interrupted::

    repro-serve /path/to/checkpoint --port 8080 --engine sparse \
        --budget 256 --workers 4 --max-batch-size 32 --max-wait-ms 2

Point it at a checkpoint directory written by
:func:`repro.serving.checkpoint.save_checkpoint`, or at a
:class:`~repro.serving.checkpoint.CheckpointStore` root (the newest version
is served).

Configuration can come from a JSON file instead of flags::

    repro-serve /path/to/store --config serving.json --watch

``serving.json`` maps field-for-field onto :class:`~repro.config.ServingConfig`
(including the admission/autoscale/hot-reload knobs); unknown keys and bad
values are rejected with an error naming the offending field.  Explicit
command-line flags override the file.  ``--watch`` (requires a store root)
runs the :class:`~repro.serving.runtime.OnlineRuntime`: new checkpoint
versions published into the store are hot-swapped in with zero downtime.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.config import ServingConfig, load_serving_config
from repro.serving.checkpoint import CheckpointError, CheckpointStore, load_checkpoint
from repro.serving.pool import ServingRuntime, build_engine
from repro.serving.runtime import OnlineRuntime
from repro.serving.server import build_server

__all__ = ["main"]


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a checkpointed SLIDE network over HTTP/JSON.",
    )
    parser.add_argument(
        "checkpoint",
        type=Path,
        help="checkpoint directory, or a CheckpointStore root (newest version wins)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="JSON file of ServingConfig fields; explicit flags override it",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="hot-reload new checkpoint versions (checkpoint must be a store root)",
    )
    # Flags default to None so "explicitly given" is distinguishable from
    # "absent": only given flags override --config / ServingConfig defaults.
    parser.add_argument("--host", default=None, help="default 127.0.0.1")
    parser.add_argument("--port", type=int, default=None, help="default 8080")
    parser.add_argument(
        "--engine",
        choices=("sparse", "dense"),
        default=None,
        help="sparse = LSH-budgeted engine (default), dense = exact forward pass",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max output neurons scored per request (sparse engine only)",
    )
    parser.add_argument("--top-k", type=int, default=None, help="default 5")
    parser.add_argument("--workers", type=int, default=None, help="default 2")
    parser.add_argument("--max-batch-size", type=int, default=None, help="default 32")
    parser.add_argument("--max-wait-ms", type=float, default=None, help="default 2.0")
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    return parser.parse_args(argv)


def _resolve_checkpoint(path: Path) -> Path:
    """Accept either a checkpoint directory or a versioned store root."""
    if (path / "manifest.json").is_file():
        return path
    return CheckpointStore(path).latest()


def _build_config(args: argparse.Namespace, output_dim: int) -> ServingConfig:
    """File config (if any) + explicit flag overrides, validated once."""
    config = (
        load_serving_config(args.config) if args.config is not None else ServingConfig()
    )
    overrides: dict[str, object] = {}
    for flag, field_name in (
        ("host", "host"),
        ("port", "port"),
        ("engine", "engine"),
        ("budget", "active_budget"),
        ("top_k", "top_k"),
        ("workers", "num_workers"),
        ("max_batch_size", "max_batch_size"),
        ("max_wait_ms", "max_wait_ms"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field_name] = value
    if overrides:
        config = replace(config, **overrides)
    # A default top_k wider than the model would 400 every default request;
    # the mismatch is knowable now, so clamp at startup.
    if config.top_k > output_dim:
        print(
            f"note: top_k clamped from {config.top_k} to the model's "
            f"{output_dim} output classes"
        )
        config = replace(config, top_k=output_dim)
    return config


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.watch and (args.checkpoint / "manifest.json").is_file():
        print(
            "error: --watch needs a CheckpointStore root, not a single "
            "checkpoint directory",
            file=sys.stderr,
        )
        return 2
    try:
        checkpoint_path = _resolve_checkpoint(args.checkpoint)
        loaded = load_checkpoint(checkpoint_path, load_optimizer=False)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    network = loaded.network
    try:
        config = _build_config(args, network.output_dim)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.watch:
        runtime: ServingRuntime = OnlineRuntime(args.checkpoint, config).start()
    else:
        runtime = ServingRuntime(build_engine(network, config), config).start()
    server = build_server(runtime, quiet=not args.verbose)
    host, port = server.address
    mode = " watch=on" if args.watch else ""
    print(
        f"serving {checkpoint_path} "
        f"({network.input_dim} features -> {network.output_dim} classes, "
        f"engine={runtime.engine.name}, workers={config.num_workers}{mode}) "
        f"on http://{host}:{port}"
    )
    print("endpoints: POST /v1/predict, GET /healthz, GET /v1/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
