"""CLI entry point: ``python -m repro.serving`` / ``repro-serve``.

Loads a checkpoint, assembles the serving runtime described by the command
line, and serves HTTP until interrupted::

    repro-serve /path/to/checkpoint --port 8080 --engine sparse \
        --budget 256 --workers 4 --max-batch-size 32 --max-wait-ms 2

Point it at a checkpoint directory written by
:func:`repro.serving.checkpoint.save_checkpoint`, or at a
:class:`~repro.serving.checkpoint.CheckpointStore` root (the newest version
is served).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import ServingConfig
from repro.serving.checkpoint import CheckpointError, CheckpointStore, load_checkpoint
from repro.serving.pool import ServingRuntime, build_engine
from repro.serving.server import build_server

__all__ = ["main"]


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a checkpointed SLIDE network over HTTP/JSON.",
    )
    parser.add_argument(
        "checkpoint",
        type=Path,
        help="checkpoint directory, or a CheckpointStore root (newest version wins)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--engine",
        choices=("sparse", "dense"),
        default="sparse",
        help="sparse = LSH-budgeted engine, dense = exact full forward pass",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max output neurons scored per request (sparse engine only)",
    )
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    return parser.parse_args(argv)


def _resolve_checkpoint(path: Path) -> Path:
    """Accept either a checkpoint directory or a versioned store root."""
    if (path / "manifest.json").is_file():
        return path
    return CheckpointStore(path).latest()


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    try:
        checkpoint_path = _resolve_checkpoint(args.checkpoint)
        loaded = load_checkpoint(checkpoint_path, load_optimizer=False)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    network = loaded.network
    # A default top_k wider than the model would 400 every default request;
    # the mismatch is knowable now, so clamp at startup.
    top_k = min(args.top_k, network.output_dim)
    if top_k != args.top_k:
        print(
            f"note: top_k clamped from {args.top_k} to the model's "
            f"{network.output_dim} output classes"
        )
    try:
        config = ServingConfig(
            engine=args.engine,
            active_budget=args.budget,
            top_k=top_k,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            num_workers=args.workers,
            host=args.host,
            port=args.port,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runtime = ServingRuntime(build_engine(network, config), config).start()
    server = build_server(runtime, quiet=not args.verbose)
    host, port = server.address
    print(
        f"serving {checkpoint_path} "
        f"({network.input_dim} features -> {network.output_dim} classes, "
        f"engine={runtime.engine.name}, workers={config.num_workers}) "
        f"on http://{host}:{port}"
    )
    print("endpoints: POST /v1/predict, GET /healthz, GET /v1/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
