"""Typed request-rejection errors for the serving runtime.

Admission control needs failures a client can *act on*, not generic
``RuntimeError`` strings: a shed request should come back as an HTTP 429
with a retry hint, a deadline miss as a 504, and callers of the Python API
should be able to catch exactly the overload cases without string matching.

Every error carries ``cause`` (the counter key it increments in
:class:`~repro.serving.metrics.ServingMetrics`) and ``http_status`` (what
the HTTP front-end maps it to).
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "NotServingError",
    "RejectedError",
    "DeadlineExceededError",
    "PayloadTooLargeError",
    "ReplicaUnavailableError",
    "RetriesExhaustedError",
]


class ServingError(RuntimeError):
    """Base class for typed serving-path failures."""

    cause = "error"
    http_status = 500


class NotServingError(ServingError):
    """Request arrived while the runtime cannot serve: stopped, stopping,
    or never started.

    Distinct from overload (``RejectedError``): there is no backlog to
    drain — the serving loop simply is not running.  Mapped to HTTP 503 so
    a request racing a shutdown reads as "service unavailable, try another
    replica" rather than an opaque 500, and so the router's availability
    accounting can tell shutdowns from engine crashes.
    """

    cause = "not_serving"
    http_status = 503

    def __init__(self, detail: str) -> None:
        super().__init__(f"not serving: {detail}")


class RejectedError(ServingError):
    """Request shed at admission: the bounded queue is full.

    ``retry_after_s`` is derived from the current queue depth and the
    measured drain rate — the time by which the backlog should have cleared
    — so well-behaved clients back off proportionally to the overload
    instead of hammering a saturated server.
    """

    cause = "queue_full"
    http_status = 429

    def __init__(self, retry_after_s: float, pending: int) -> None:
        self.retry_after_s = float(retry_after_s)
        self.pending = int(pending)
        super().__init__(
            f"request shed: queue full ({pending} pending); "
            f"retry after {retry_after_s:.3f}s"
        )


class DeadlineExceededError(ServingError):
    """Request dropped before compute: its deadline expired while queued.

    Spending engine time on an answer the client has already given up on
    only makes the overload worse, so expired requests are failed the moment
    a worker picks up their batch, before any scoring happens.
    """

    cause = "deadline"
    http_status = 504

    def __init__(self, waited_s: float, deadline_s: float) -> None:
        self.waited_s = float(waited_s)
        self.deadline_s = float(deadline_s)
        super().__init__(
            f"deadline exceeded: waited {waited_s * 1e3:.1f}ms "
            f"of a {deadline_s * 1e3:.1f}ms budget before reaching a worker"
        )


class PayloadTooLargeError(ServingError):
    """HTTP request body larger than the configured ``max_body_bytes``.

    Raised by the front-end *before* reading any body byte — the declared
    ``Content-Length`` alone is grounds for refusal, so an abusive client
    cannot tie a connection thread to an arbitrarily long read.
    """

    cause = "body_too_large"
    http_status = 413

    def __init__(self, declared_bytes: int, limit_bytes: int) -> None:
        self.declared_bytes = int(declared_bytes)
        self.limit_bytes = int(limit_bytes)
        super().__init__(
            f"request body of {declared_bytes} bytes exceeds the "
            f"{limit_bytes}-byte limit"
        )


class ReplicaUnavailableError(ServingError):
    """The router found no replica able to take the request.

    Every replica is either failing health checks or sitting behind an
    open circuit breaker; the client should treat this like a 503 and
    retry against the service later.
    """

    cause = "no_replica"
    http_status = 503

    def __init__(self, detail: str = "") -> None:
        message = "no healthy replica available"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class RetriesExhaustedError(ServingError):
    """A routed request failed on every attempt within its budget.

    Carries how many attempts were made and the final per-attempt error so
    clients (and the failover bench) can attribute the loss.
    """

    cause = "retries_exhausted"
    http_status = 502

    def __init__(self, attempts: int, last_error: BaseException | None) -> None:
        self.attempts = int(attempts)
        self.last_error = last_error
        detail = f": last error: {last_error}" if last_error is not None else ""
        super().__init__(f"request failed after {attempts} attempt(s){detail}")
