"""Typed request-rejection errors for the serving runtime.

Admission control needs failures a client can *act on*, not generic
``RuntimeError`` strings: a shed request should come back as an HTTP 429
with a retry hint, a deadline miss as a 504, and callers of the Python API
should be able to catch exactly the overload cases without string matching.

Every error carries ``cause`` (the counter key it increments in
:class:`~repro.serving.metrics.ServingMetrics`) and ``http_status`` (what
the HTTP front-end maps it to).
"""

from __future__ import annotations

__all__ = ["ServingError", "RejectedError", "DeadlineExceededError"]


class ServingError(RuntimeError):
    """Base class for typed serving-path failures."""

    cause = "error"
    http_status = 500


class RejectedError(ServingError):
    """Request shed at admission: the bounded queue is full.

    ``retry_after_s`` is derived from the current queue depth and the
    measured drain rate — the time by which the backlog should have cleared
    — so well-behaved clients back off proportionally to the overload
    instead of hammering a saturated server.
    """

    cause = "queue_full"
    http_status = 429

    def __init__(self, retry_after_s: float, pending: int) -> None:
        self.retry_after_s = float(retry_after_s)
        self.pending = int(pending)
        super().__init__(
            f"request shed: queue full ({pending} pending); "
            f"retry after {retry_after_s:.3f}s"
        )


class DeadlineExceededError(ServingError):
    """Request dropped before compute: its deadline expired while queued.

    Spending engine time on an answer the client has already given up on
    only makes the overload worse, so expired requests are failed the moment
    a worker picks up their batch, before any scoring happens.
    """

    cause = "deadline"
    http_status = 504

    def __init__(self, waited_s: float, deadline_s: float) -> None:
        self.waited_s = float(waited_s)
        self.deadline_s = float(deadline_s)
        super().__init__(
            f"deadline exceeded: waited {waited_s * 1e3:.1f}ms "
            f"of a {deadline_s * 1e3:.1f}ms budget before reaching a worker"
        )
