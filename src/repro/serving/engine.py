"""Inference engines: the LSH-accelerated sparse path and the dense scorer.

Training-time SLIDE samples active neurons *stochastically* (random table
order, random padding) because exploration helps SGD.  Serving wants the
opposite — deterministic, repeatable answers — so the sparse engine reuses
the per-layer :class:`~repro.lsh.index.LSHIndex` **query** path read-only and
aggregates candidate frequencies across all ``L`` tables (the paper's TopK
collection scheme) instead of going through the layer's sampler:

1. hidden layers run as one batched dense matrix multiply (they are narrow;
   the output layer is where extreme classification's cost lives);
2. the wide output layer is probed through the hash tables; the
   ``active_budget`` knob caps how many candidate neurons survive (most
   collisions first), trading accuracy for latency;
3. the surviving candidates are scored *exactly* against the weight matrix
   and the top-k is taken over those exact logits — LSH only proposes, the
   rerank disposes;
4. requests whose candidate set is too small to support a top-k answer fall
   back to the dense scorer, so the engine never returns fewer than ``k``
   predictions.

Engines are stateless with respect to requests and therefore safe to share
across the worker threads of :class:`repro.serving.pool.EnginePool`.

For the online runtime they additionally support **zero-downtime hot
reload**: :meth:`InferenceEngine.hot_swap` diffs an incoming network against
the resident weights, copies only the changed rows in place, and patches the
LSH tables through the incremental :meth:`~repro.lsh.index.LSHIndex.update`
code-diff path — no full rebuild, no second engine.  The swap runs under a
writer-preferring read-write lock (readers are inference batches), and a
seqlock-style generation counter (odd while a swap is in flight, even when
settled) lets every prediction report which weight generation produced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.activations import sparse_softmax
from repro.core.network import SlideNetwork
from repro.types import FloatArray, IntArray, SparseExample, dense_features
from repro.utils import sanitize
from repro.utils.rwlock import ReadWriteLock
from repro.utils.topk import top_k_indices

__all__ = [
    "Prediction",
    "SwapReport",
    "InferenceEngine",
    "DenseInferenceEngine",
    "SparseInferenceEngine",
]


@dataclass(frozen=True)
class Prediction:
    """Top-k answer for one request.

    ``class_ids``/``scores`` are sorted by descending score.  ``mode`` is
    ``sparse`` when the LSH path produced the answer, ``dense`` for the
    dense engine, ``dense_fallback`` when a sparse request fell back, and
    ``sparse_norerank`` when exact rerank was disabled by degradation (the
    candidates are ranked by raw collision counts).  ``candidates_scored``
    counts the output neurons actually scored — the quantity the active
    budget bounds.  ``generation`` identifies the weight generation that
    produced the answer (``-1`` when the request bypassed the
    generation-stamping guarded path).  ``degradation`` is the router's
    quality-for-availability ladder level the answer was served under
    (0 = full quality), and ``replica`` names the serving replica when the
    answer was routed (``None`` for direct engine/runtime calls) — both
    stamped by :class:`repro.serving.router.ReplicaRouter`.
    """

    class_ids: IntArray
    scores: FloatArray
    mode: str
    candidates_scored: int
    generation: int = -1
    degradation: int = 0
    replica: str | None = None


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`InferenceEngine.hot_swap` actually did.

    ``changed_rows`` counts neurons whose weights or bias differed between
    the resident and incoming networks (summed over layers);
    ``update_items`` / ``moved_entries`` are the incremental LSH counters
    for the swap — ``full_rebuild=False`` together with a bounded
    ``moved_entries`` is the evidence the swap took the code-diff
    ``update(dirty)`` path rather than rebuilding the tables.
    """

    version: str | None
    changed_rows: int
    update_items: int
    moved_entries: int
    full_rebuild: bool
    duration_s: float
    generation: int


class InferenceEngine:
    """Common surface shared by the dense and sparse engines."""

    name = "base"

    def __init__(self, network: SlideNetwork) -> None:
        self.network = network
        # Seqlock-style counter: even = settled, odd = swap in progress.
        # Guarded-path readers only ever observe even values because they
        # hold the read lock, but external observers (stats endpoint) can
        # see an odd value and know a swap is mid-flight.
        self.generation = 0
        self._swap_lock = ReadWriteLock(name="engine.swap")
        # Optional deterministic chaos hook (repro.faults.ServingFaultInjector):
        # consulted once per guarded batch and once per checkpoint load, so
        # serving-side faults fire at exact request coordinates.
        self.fault_injector = None

    @property
    def output_dim(self) -> int:
        return self.network.output_dim

    def predict(self, example: SparseExample, k: int = 1) -> Prediction:
        """Top-k prediction for one example."""
        return self.predict_batch([example], k=k)[0]

    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        raise NotImplementedError

    def predict_batch_guarded(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        """Batch prediction under the swap gate, generation-stamped.

        Pool workers use this path: batches already in flight finish on the
        weights they started with (the writer waits for them), and every
        answer records the generation that produced it.
        """
        injector = self.fault_injector
        if injector is not None:
            # Outside the read lock: a "hang" fault must not block hot_swap.
            injector.on_predict(len(examples))
        with self._swap_lock.read_locked():
            generation = self.generation
            predictions = self.predict_batch(examples, k=k)
        return [replace(p, generation=generation) for p in predictions]

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def hot_swap(
        self, incoming: SlideNetwork, version: str | None = None
    ) -> SwapReport:
        """Swap the resident weights for ``incoming``'s, in place.

        Per layer, rows whose weights or bias changed are diffed out and
        copied over; LSH-backed layers then re-hash exactly that dirty set
        through :meth:`~repro.lsh.index.LSHIndex.update`, which moves only
        entries whose per-table fingerprint actually changed.  In-flight
        guarded batches drain first (writer-preferring lock); requests
        admitted after the swap see the new generation.

        When the incoming network was built from a *different*
        :class:`~repro.config.SlideNetworkConfig` (but with identical layer
        shapes), the incremental path is unsound — hash-family parameters
        may differ — so every LSH layer is rebuilt from scratch with the
        resident hash family and the report says ``full_rebuild=True``.
        Shape mismatches raise ``ValueError``.
        """
        old_layers = self.network.layers
        new_layers = incoming.layers
        if len(old_layers) != len(new_layers):
            raise ValueError(
                f"cannot hot-swap: resident network has {len(old_layers)} "
                f"layers, incoming has {len(new_layers)}"
            )
        for idx, (old, new) in enumerate(zip(old_layers, new_layers)):
            if old.weights.shape != new.weights.shape:
                raise ValueError(
                    f"cannot hot-swap: layer {idx} shape mismatch "
                    f"({old.weights.shape} vs {new.weights.shape})"
                )
        full_rebuild = self.network.config != incoming.config
        start = time.monotonic()
        changed_rows = 0
        update_items = 0
        moved_entries = 0
        self._swap_lock.acquire_write()
        try:
            self.generation += 1  # odd: swap in progress
            for old, new in zip(old_layers, new_layers):
                changed = np.flatnonzero(
                    np.any(old.weights != new.weights, axis=1)
                    | (old.biases != new.biases)
                )
                changed_rows += int(changed.size)
                if changed.size:
                    old.weights[changed] = new.weights[changed]
                    old.biases[changed] = new.biases[changed]
                index = old.lsh_index
                if index is None:
                    continue
                if full_rebuild:
                    index.build(old.weights)
                elif changed.size:
                    items_before = index.num_update_items
                    moved_before = index.num_moved_entries
                    index.update(changed, old.weights[changed])
                    update_items += index.num_update_items - items_before
                    moved_entries += index.num_moved_entries - moved_before
        finally:
            self.generation += 1  # even: swap settled
            self._swap_lock.release_write()
        return SwapReport(
            version=version,
            changed_rows=changed_rows,
            update_items=update_items,
            moved_entries=moved_entries,
            full_rebuild=full_rebuild,
            duration_s=time.monotonic() - start,
            generation=self.generation,
        )

    def _check_k(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if k > self.output_dim:
            raise ValueError(
                f"k={k} exceeds the number of output classes ({self.output_dim})"
            )


class DenseInferenceEngine(InferenceEngine):
    """Exact engine: batched full forward pass, exact top-k."""

    name = "dense"

    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        self._check_k(k)
        if not examples:
            return []
        probabilities = self.network.predict_dense_batch(examples)
        predictions = []
        for row in range(probabilities.shape[0]):
            ids = top_k_indices(probabilities[row], k)
            predictions.append(
                Prediction(
                    class_ids=ids,
                    scores=probabilities[row, ids],
                    mode="dense",
                    candidates_scored=self.output_dim,
                )
            )
        return predictions


class SparseInferenceEngine(InferenceEngine):
    """LSH-budgeted engine over a trained :class:`SlideNetwork`.

    Parameters
    ----------
    active_budget:
        Maximum number of output-layer candidates scored per request
        (``None`` scores every neuron the hash tables return).  Smaller
        budgets are faster and less accurate — this is the serving-side
        analogue of the paper's ``beta``.  The effective budget is floored
        at the dense-fallback threshold (``min_candidate_factor * k``): a
        degraded budget below it would route every request to the *full*
        dense scorer, making the cheap quality level the most expensive.
    min_candidate_factor:
        A request falls back to the dense scorer when the tables return
        fewer than ``min_candidate_factor * k`` candidates, so sparsity
        never starves the top-k answer.
    refresh_index:
        Training leaves neurons whose weights changed after the last
        scheduled re-hash "dirty" — their table entries are stale, which
        directly costs serving accuracy.  By default the engine re-hashes
        any pending dirty neurons once at construction so it serves from
        fresh tables; pass ``False`` to snapshot the index as-is.
    rerank:
        With the default ``True``, surviving candidates are scored exactly
        against the weight matrix (step 3 of the module docstring).  With
        ``False`` the exact rerank is skipped entirely and the top-k is
        taken over raw collision counts — cheaper and less accurate, the
        deepest pre-shed step of the router's degradation ladder.  Both
        ``active_budget`` and ``rerank`` are plain attributes so the
        degradation controller can retune a live engine between batches.
    """

    name = "sparse"

    def __init__(
        self,
        network: SlideNetwork,
        active_budget: int | None = None,
        min_candidate_factor: int = 2,
        refresh_index: bool = True,
        rerank: bool = True,
    ) -> None:
        super().__init__(network)
        if network.output_layer.lsh_index is None:
            raise ValueError(
                "SparseInferenceEngine requires an LSH-enabled output layer; "
                "use DenseInferenceEngine for dense networks"
            )
        if active_budget is not None and active_budget <= 0:
            raise ValueError("active_budget must be positive when provided")
        if min_candidate_factor <= 0:
            raise ValueError("min_candidate_factor must be positive")
        if refresh_index and network.output_layer.dirty_neuron_count:
            network.output_layer.rebuild()
        self.active_budget = active_budget
        self.min_candidate_factor = int(min_candidate_factor)
        self.rerank = bool(rerank)
        # Fallback / work counters (diagnostics surfaced by the stats API);
        # locked because pool workers call predict_batch concurrently.
        self._counter_lock = sanitize.lock("engine.counters")
        self.num_requests = 0
        self.num_fallbacks = 0

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def _select_candidates(self, hidden: FloatArray) -> IntArray:
        """Budgeted candidate set for one output-layer input vector."""
        index = self.network.output_layer.lsh_index
        assert index is not None
        return self._select_from_result(index.query(hidden))

    def _select_from_result(self, result) -> IntArray:
        """Budgeted candidate set from an existing table query result."""
        return self._select_from_counts(*result.frequencies())

    def _select_from_counts(self, ids: IntArray, counts: IntArray) -> IntArray:
        """Budgeted candidate set from aggregated collision counts."""
        return ids[self._budget_positions(ids, counts)]

    def _budget_positions(
        self, ids: IntArray, counts: IntArray, floor: int = 0
    ) -> IntArray:
        """Positions (sorted by id) of the candidates surviving the budget.

        ``floor`` raises the effective budget so a deliberately degraded
        ``active_budget`` never drops below the dense-fallback threshold —
        falling back to the full dense layer would make a *cheaper* quality
        level strictly more expensive, inverting the degradation ladder.
        """
        budget = self.active_budget
        if budget is not None:
            budget = max(budget, floor)
        if budget is None or ids.size <= budget:
            return np.arange(ids.size)
        # Keep the most-collided candidates; break count ties by id so the
        # selection is deterministic for a given table state.
        order = np.lexsort((ids, -counts))[:budget]
        return np.sort(order)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        self._check_k(k)
        if not examples:
            return []
        # Hidden layers: one dense matrix multiply for the whole batch.
        features = dense_features(examples, self.network.input_dim)
        for layer in self.network.layers[:-1]:
            features = layer.dense_forward_batch(features)

        output_layer = self.network.output_layer
        assert output_layer.lsh_index is not None
        # Flat batched LSH probing (the same kernel path training uses): one
        # hash sweep and one bucket gather per table for the whole batch; no
        # per-request query objects are materialised.
        flat = output_layer.lsh_index.query_batch_flat(features)
        min_candidates = max(k, self.min_candidate_factor * k)
        predictions: list[Prediction] = []
        dense_rows: list[int] = []
        rerank = self.rerank
        for row in range(features.shape[0]):
            hidden = features[row]
            ids, counts = flat.frequencies(row)
            positions = self._budget_positions(ids, counts, floor=min_candidates)
            candidates = ids[positions]
            if candidates.size < min_candidates:
                dense_rows.append(row)
                predictions.append(None)  # type: ignore[arg-type]
                continue
            if not rerank:
                # Degraded path: rank by raw collision counts, no weight
                # access at all.  Scores are normalised count fractions —
                # sorted descending like every other mode, comparable only
                # within the request.
                cand_counts = counts[positions]
                keep = np.lexsort((candidates, -cand_counts))[:k]
                fractions = cand_counts[keep] / max(int(cand_counts.sum()), 1)
                predictions.append(
                    Prediction(
                        class_ids=candidates[keep],
                        scores=fractions.astype(np.float64),
                        mode="sparse_norerank",
                        candidates_scored=0,
                    )
                )
                continue
            # Exact rerank on the candidate set: logits are exact, the
            # softmax is normalised over the candidates only (ranking is
            # unchanged — softmax is monotonic in the logit).
            logits = (
                output_layer.weights[candidates] @ hidden
                + output_layer.biases[candidates]
            )
            probabilities = sparse_softmax(logits)
            keep = top_k_indices(probabilities, k)
            predictions.append(
                Prediction(
                    class_ids=candidates[keep],
                    scores=probabilities[keep],
                    mode="sparse",
                    candidates_scored=int(candidates.size),
                )
            )

        # Dense fallback for the starved rows, batched together.
        if dense_rows:
            block = features[dense_rows]
            probabilities = output_layer.dense_forward_batch(block)
            for position, row in enumerate(dense_rows):
                ids = top_k_indices(probabilities[position], k)
                predictions[row] = Prediction(
                    class_ids=ids,
                    scores=probabilities[position, ids],
                    mode="dense_fallback",
                    candidates_scored=self.output_dim,
                )

        with self._counter_lock:
            self.num_requests += len(examples)
            self.num_fallbacks += len(dense_rows)
        return predictions

    def fallback_rate(self) -> float:
        """Fraction of requests served by the dense fallback path."""
        with self._counter_lock:
            if self.num_requests == 0:
                return 0.0
            return self.num_fallbacks / self.num_requests
