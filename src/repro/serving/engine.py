"""Inference engines: the LSH-accelerated sparse path and the dense scorer.

Training-time SLIDE samples active neurons *stochastically* (random table
order, random padding) because exploration helps SGD.  Serving wants the
opposite — deterministic, repeatable answers — so the sparse engine reuses
the per-layer :class:`~repro.lsh.index.LSHIndex` **query** path read-only and
aggregates candidate frequencies across all ``L`` tables (the paper's TopK
collection scheme) instead of going through the layer's sampler:

1. hidden layers run as one batched dense matrix multiply (they are narrow;
   the output layer is where extreme classification's cost lives);
2. the wide output layer is probed through the hash tables; the
   ``active_budget`` knob caps how many candidate neurons survive (most
   collisions first), trading accuracy for latency;
3. the surviving candidates are scored *exactly* against the weight matrix
   and the top-k is taken over those exact logits — LSH only proposes, the
   rerank disposes;
4. requests whose candidate set is too small to support a top-k answer fall
   back to the dense scorer, so the engine never returns fewer than ``k``
   predictions.

Engines are stateless with respect to requests and therefore safe to share
across the worker threads of :class:`repro.serving.pool.EnginePool`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.activations import sparse_softmax
from repro.core.network import SlideNetwork
from repro.types import FloatArray, IntArray, SparseExample, dense_features
from repro.utils.topk import top_k_indices

__all__ = [
    "Prediction",
    "InferenceEngine",
    "DenseInferenceEngine",
    "SparseInferenceEngine",
]


@dataclass(frozen=True)
class Prediction:
    """Top-k answer for one request.

    ``class_ids``/``scores`` are sorted by descending score.  ``mode`` is
    ``sparse`` when the LSH path produced the answer, ``dense`` for the
    dense engine, and ``dense_fallback`` when a sparse request fell back.
    ``candidates_scored`` counts the output neurons actually scored — the
    quantity the active budget bounds.
    """

    class_ids: IntArray
    scores: FloatArray
    mode: str
    candidates_scored: int


class InferenceEngine:
    """Common surface shared by the dense and sparse engines."""

    name = "base"

    def __init__(self, network: SlideNetwork) -> None:
        self.network = network

    @property
    def output_dim(self) -> int:
        return self.network.output_dim

    def predict(self, example: SparseExample, k: int = 1) -> Prediction:
        """Top-k prediction for one example."""
        return self.predict_batch([example], k=k)[0]

    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        raise NotImplementedError

    def _check_k(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if k > self.output_dim:
            raise ValueError(
                f"k={k} exceeds the number of output classes ({self.output_dim})"
            )


class DenseInferenceEngine(InferenceEngine):
    """Exact engine: batched full forward pass, exact top-k."""

    name = "dense"

    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        self._check_k(k)
        if not examples:
            return []
        probabilities = self.network.predict_dense_batch(examples)
        predictions = []
        for row in range(probabilities.shape[0]):
            ids = top_k_indices(probabilities[row], k)
            predictions.append(
                Prediction(
                    class_ids=ids,
                    scores=probabilities[row, ids],
                    mode="dense",
                    candidates_scored=self.output_dim,
                )
            )
        return predictions


class SparseInferenceEngine(InferenceEngine):
    """LSH-budgeted engine over a trained :class:`SlideNetwork`.

    Parameters
    ----------
    active_budget:
        Maximum number of output-layer candidates scored per request
        (``None`` scores every neuron the hash tables return).  Smaller
        budgets are faster and less accurate — this is the serving-side
        analogue of the paper's ``beta``.
    min_candidate_factor:
        A request falls back to the dense scorer when the tables return
        fewer than ``min_candidate_factor * k`` candidates, so sparsity
        never starves the top-k answer.
    refresh_index:
        Training leaves neurons whose weights changed after the last
        scheduled re-hash "dirty" — their table entries are stale, which
        directly costs serving accuracy.  By default the engine re-hashes
        any pending dirty neurons once at construction so it serves from
        fresh tables; pass ``False`` to snapshot the index as-is.
    """

    name = "sparse"

    def __init__(
        self,
        network: SlideNetwork,
        active_budget: int | None = None,
        min_candidate_factor: int = 2,
        refresh_index: bool = True,
    ) -> None:
        super().__init__(network)
        if network.output_layer.lsh_index is None:
            raise ValueError(
                "SparseInferenceEngine requires an LSH-enabled output layer; "
                "use DenseInferenceEngine for dense networks"
            )
        if active_budget is not None and active_budget <= 0:
            raise ValueError("active_budget must be positive when provided")
        if min_candidate_factor <= 0:
            raise ValueError("min_candidate_factor must be positive")
        if refresh_index and network.output_layer.dirty_neuron_count:
            network.output_layer.rebuild()
        self.active_budget = active_budget
        self.min_candidate_factor = int(min_candidate_factor)
        # Fallback / work counters (diagnostics surfaced by the stats API);
        # locked because pool workers call predict_batch concurrently.
        self._counter_lock = threading.Lock()
        self.num_requests = 0
        self.num_fallbacks = 0

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def _select_candidates(self, hidden: FloatArray) -> IntArray:
        """Budgeted candidate set for one output-layer input vector."""
        index = self.network.output_layer.lsh_index
        assert index is not None
        return self._select_from_result(index.query(hidden))

    def _select_from_result(self, result) -> IntArray:
        """Budgeted candidate set from an existing table query result."""
        return self._select_from_counts(*result.frequencies())

    def _select_from_counts(self, ids: IntArray, counts: IntArray) -> IntArray:
        """Budgeted candidate set from aggregated collision counts."""
        if ids.size == 0:
            return ids
        budget = self.active_budget
        if budget is None or ids.size <= budget:
            return ids
        # Keep the most-collided candidates; break count ties by id so the
        # selection is deterministic for a given table state.
        order = np.lexsort((ids, -counts))[:budget]
        return np.sort(ids[order])

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_batch(
        self, examples: list[SparseExample], k: int = 1
    ) -> list[Prediction]:
        self._check_k(k)
        if not examples:
            return []
        # Hidden layers: one dense matrix multiply for the whole batch.
        features = dense_features(examples, self.network.input_dim)
        for layer in self.network.layers[:-1]:
            features = layer.dense_forward_batch(features)

        output_layer = self.network.output_layer
        assert output_layer.lsh_index is not None
        # Flat batched LSH probing (the same kernel path training uses): one
        # hash sweep and one bucket gather per table for the whole batch; no
        # per-request query objects are materialised.
        flat = output_layer.lsh_index.query_batch_flat(features)
        min_candidates = max(k, self.min_candidate_factor * k)
        predictions: list[Prediction] = []
        dense_rows: list[int] = []
        for row in range(features.shape[0]):
            hidden = features[row]
            candidates = self._select_from_counts(*flat.frequencies(row))
            if candidates.size < min_candidates:
                dense_rows.append(row)
                predictions.append(None)  # type: ignore[arg-type]
                continue
            # Exact rerank on the candidate set: logits are exact, the
            # softmax is normalised over the candidates only (ranking is
            # unchanged — softmax is monotonic in the logit).
            logits = (
                output_layer.weights[candidates] @ hidden
                + output_layer.biases[candidates]
            )
            probabilities = sparse_softmax(logits)
            keep = top_k_indices(probabilities, k)
            predictions.append(
                Prediction(
                    class_ids=candidates[keep],
                    scores=probabilities[keep],
                    mode="sparse",
                    candidates_scored=int(candidates.size),
                )
            )

        # Dense fallback for the starved rows, batched together.
        if dense_rows:
            block = features[dense_rows]
            probabilities = output_layer.dense_forward_batch(block)
            for position, row in enumerate(dense_rows):
                ids = top_k_indices(probabilities[position], k)
                predictions[row] = Prediction(
                    class_ids=ids,
                    scores=probabilities[position, ids],
                    mode="dense_fallback",
                    candidates_scored=self.output_dim,
                )

        with self._counter_lock:
            self.num_requests += len(examples)
            self.num_fallbacks += len(dense_rows)
        return predictions

    def fallback_rate(self) -> float:
        """Fraction of requests served by the dense fallback path."""
        with self._counter_lock:
            if self.num_requests == 0:
                return 0.0
            return self.num_fallbacks / self.num_requests
