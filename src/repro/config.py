"""Configuration dataclasses for SLIDE networks and experiments.

These configs mirror the tunable parameters called out in the paper:

* ``(K, L)`` — number of hash bits per table and number of tables
  (Section 3.2).
* bucket size limit and insertion policy (Section 4.2, Table 3).
* rebuild schedule ``N0``/``lambda`` — exponential decay of the hash-table
  update frequency (Section 4.2).
* sampling strategy and target active-set size ``beta`` (Section 4.1).

Beyond training, :class:`ServingConfig` describes the inference side
(:mod:`repro.serving`): engine kind, active-neuron budget, micro-batching
and worker-pool parameters of the model server.  The ``*_to_dict`` /
``*_from_dict`` helpers give every config a stable JSON representation used
by the checkpoint format.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Literal, Mapping

__all__ = [
    "HashFamilyName",
    "SamplingStrategyName",
    "InsertionPolicyName",
    "LSHConfig",
    "RebuildScheduleConfig",
    "SamplingConfig",
    "LayerConfig",
    "SlideNetworkConfig",
    "OptimizerConfig",
    "TrainingConfig",
    "ServingConfig",
    "RouterConfig",
    "FaultToleranceConfig",
    "fault_tolerance_config_to_dict",
    "fault_tolerance_config_from_dict",
    "lsh_config_to_dict",
    "lsh_config_from_dict",
    "rebuild_schedule_config_to_dict",
    "rebuild_schedule_config_from_dict",
    "sampling_config_to_dict",
    "sampling_config_from_dict",
    "layer_config_to_dict",
    "layer_config_from_dict",
    "network_config_to_dict",
    "network_config_from_dict",
    "optimizer_config_to_dict",
    "optimizer_config_from_dict",
    "training_config_to_dict",
    "training_config_from_dict",
    "serving_config_to_dict",
    "serving_config_from_dict",
    "load_serving_config",
    "router_config_to_dict",
    "router_config_from_dict",
    "CONFIG_CODECS",
    "config_examples",
]

HashFamilyName = Literal["simhash", "wta", "dwta", "doph", "minhash"]
SamplingStrategyName = Literal["vanilla", "topk", "hard_threshold"]
InsertionPolicyName = Literal["fifo", "reservoir"]


@dataclass(frozen=True)
class LSHConfig:
    """Parameters of the per-layer LSH index.

    Attributes
    ----------
    hash_family:
        One of ``simhash``, ``wta``, ``dwta``, ``doph``, ``minhash``.
    k:
        Number of elementary hash functions concatenated per table
        (``K`` in the paper).
    l:
        Number of hash tables (``L`` in the paper).
    bucket_size:
        Maximum number of neuron ids stored per bucket.
    insertion_policy:
        ``fifo`` or ``reservoir`` replacement when a bucket is full.
    simhash_sparsity:
        Fraction of non-zero coordinates in SimHash projection vectors
        (the paper uses 1/3 sparse random projections).
    wta_bin_size:
        ``m`` -- the number of coordinates per permutation bin for
        WTA/DWTA hashing.
    doph_top_k:
        Number of top coordinates kept when binarising dense inputs for
        DOPH/MinHash.
    """

    hash_family: HashFamilyName = "simhash"
    k: int = 6
    l: int = 20
    bucket_size: int = 128
    insertion_policy: InsertionPolicyName = "fifo"
    simhash_sparsity: float = 1.0 / 3.0
    wta_bin_size: int = 8
    doph_top_k: int = 32

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.l <= 0:
            raise ValueError("l must be positive")
        if self.bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        if not 0.0 < self.simhash_sparsity <= 1.0:
            raise ValueError("simhash_sparsity must be in (0, 1]")
        if self.wta_bin_size < 2:
            raise ValueError("wta_bin_size must be at least 2")
        if self.doph_top_k <= 0:
            raise ValueError("doph_top_k must be positive")


@dataclass(frozen=True)
class RebuildScheduleConfig:
    """Exponential-decay schedule for hash-table rebuilds (Section 4.2).

    The ``t``-th rebuild happens ``N0 * exp(lambda * (t-1))`` iterations after
    the ``(t-1)``-th one, i.e. rebuilds become progressively rarer as training
    approaches convergence.
    """

    initial_period: int = 50
    decay: float = 0.1
    max_period: int = 10_000

    def __post_init__(self) -> None:
        if self.initial_period <= 0:
            raise ValueError("initial_period must be positive")
        if self.decay < 0:
            raise ValueError("decay must be non-negative")
        if self.max_period < self.initial_period:
            raise ValueError("max_period must be >= initial_period")


@dataclass(frozen=True)
class SamplingConfig:
    """Active-neuron sampling parameters (Section 4.1)."""

    strategy: SamplingStrategyName = "vanilla"
    # Target number of active neurons to retrieve (``beta`` in the paper).
    # ``None`` means "whatever the buckets return".
    target_active: int | None = None
    # Minimum frequency for hard-thresholding.
    hard_threshold: int = 2
    # Always include ground-truth label neurons in the output layer's active
    # set during training (the reference implementation does this).
    include_labels: bool = True
    # Fall back to a uniformly random set of this size when the hash tables
    # return nothing (prevents dead iterations early in training).
    min_active: int = 16

    def __post_init__(self) -> None:
        if self.target_active is not None and self.target_active <= 0:
            raise ValueError("target_active must be positive when provided")
        if self.hard_threshold <= 0:
            raise ValueError("hard_threshold must be positive")
        if self.min_active < 0:
            raise ValueError("min_active must be non-negative")


@dataclass(frozen=True)
class LayerConfig:
    """Configuration for a single fully connected SLIDE layer."""

    size: int
    activation: Literal["relu", "softmax", "linear"] = "relu"
    # ``None`` disables LSH sampling (the layer is computed densely).
    lsh: LSHConfig | None = None
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    rebuild: RebuildScheduleConfig = field(default_factory=RebuildScheduleConfig)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("layer size must be positive")

    @property
    def uses_lsh(self) -> bool:
        return self.lsh is not None


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimiser hyper-parameters (the paper uses Adam throughout).

    ``update_clip`` bounds every Adam parameter change to
    ``update_clip * learning_rate`` per element per step.  ``None``
    (default) is exact, unclipped Adam.  The clip exists for lock-free
    multi-process training (:mod:`repro.parallel.sharedmem`): concurrent
    block updates can tear the shared first/second-moment buffers out of
    sync (large ``m`` paired with a raced-away ``v``), and an unbounded
    ``m_hat / sqrt(v_hat)`` then produces arbitrarily large steps.  The
    clip turns that worst case into bounded HOGWILD noise.
    """

    name: Literal["adam", "sgd"] = "adam"
    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    momentum: float = 0.0
    update_clip: float | None = None

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= self.beta1 < 1 or not 0 <= self.beta2 < 1:
            raise ValueError("beta1/beta2 must lie in [0, 1)")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 <= self.momentum < 1:
            raise ValueError("momentum must lie in [0, 1)")
        if self.update_clip is not None and self.update_clip <= 0:
            raise ValueError("update_clip must be positive when provided")


@dataclass(frozen=True)
class SlideNetworkConfig:
    """Full network architecture specification."""

    input_dim: int
    layers: tuple[LayerConfig, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not self.layers:
            raise ValueError("at least one layer is required")
        if self.layers[-1].activation != "softmax":
            raise ValueError("the final layer must use softmax activation")

    @property
    def output_dim(self) -> int:
        return self.layers[-1].size


@dataclass(frozen=True)
class TrainingConfig:
    """Training-loop parameters."""

    batch_size: int = 128
    epochs: int = 1
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    shuffle: bool = True
    seed: int = 0
    # Evaluate precision@1 on held-out data every this many iterations
    # (0 disables periodic evaluation).
    eval_every: int = 0
    eval_samples: int = 512

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.eval_every < 0:
            raise ValueError("eval_every must be non-negative")
        if self.eval_samples <= 0:
            raise ValueError("eval_samples must be positive")


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Supervision and checkpoint/resume knobs for the training runtime.

    Consumed by :class:`repro.parallel.sharedmem.ProcessHogwildTrainer`
    (worker supervision + periodic mid-run checkpoints) and by
    :class:`repro.core.trainer.SlideTrainer` (inline checkpoint cadence).

    Attributes
    ----------
    heartbeat_timeout_s:
        A live worker whose shared-memory heartbeat has not advanced for
        this long is declared hung, killed, and handled like a crash.
        ``0`` disables hang detection (death-by-exitcode still applies).
    poll_interval_s:
        Upper bound on the supervisor's wait between liveness checks; death
        and result messages wake it immediately regardless.
    max_restarts:
        Restarts allowed *per worker* before it is written off and its
        remaining work is reassigned to the survivors.
    backoff_base_s / backoff_max_s:
        Exponential restart backoff: attempt ``k`` waits
        ``min(base * 2**(k-1), max)`` seconds before relaunching.
    checkpoint_every_s:
        Supervisor-side cadence for mid-run training checkpoints in
        multi-process runs (``0`` disables periodic saves).
    checkpoint_every_batches:
        Inline-trainer cadence: save a resumable checkpoint every this many
        batches (``0`` = only at epoch boundaries when a checkpoint
        directory is configured).
    checkpoint_keep_last:
        Versions retained by the auto-pruning checkpoint store.
    """

    heartbeat_timeout_s: float = 30.0
    poll_interval_s: float = 0.2
    max_restarts: int = 2
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    checkpoint_every_s: float = 0.0
    checkpoint_every_batches: int = 0
    checkpoint_keep_last: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s < 0:
            raise ValueError("heartbeat_timeout_s must be non-negative")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.checkpoint_every_s < 0:
            raise ValueError("checkpoint_every_s must be non-negative")
        if self.checkpoint_every_batches < 0:
            raise ValueError("checkpoint_every_batches must be non-negative")
        if self.checkpoint_keep_last < 1:
            raise ValueError("checkpoint_keep_last must be at least 1")

    def restart_backoff_s(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), capped."""
        if attempt <= 0:
            raise ValueError("attempt must be positive")
        return min(self.backoff_base_s * 2 ** (attempt - 1), self.backoff_max_s)


@dataclass(frozen=True)
class ServingConfig:
    """Parameters of the :mod:`repro.serving` model server.

    Attributes
    ----------
    engine:
        ``sparse`` routes requests through the LSH-accelerated engine;
        ``dense`` always runs the exact full forward pass.
    active_budget:
        Maximum number of output neurons the sparse engine scores per
        request (the accuracy/latency knob).  ``None`` scores every
        candidate the hash tables return.
    top_k:
        Default number of predictions returned per request.
    max_batch_size / max_wait_ms:
        Micro-batching knobs: a worker dispatches as soon as it has
        ``max_batch_size`` requests or the oldest queued request has waited
        ``max_wait_ms`` milliseconds.
    num_workers:
        Size of the engine worker pool (the *initial* size when autoscaling
        is enabled).
    queue_capacity:
        Bound on the number of queued (not yet dispatched) requests.
    admission_policy:
        What happens to a submission that finds the queue full: ``shed``
        (default) raises a typed
        :class:`~repro.serving.errors.RejectedError` (HTTP 429 with a
        retry-after derived from queue depth); ``block`` waits for space —
        the pre-runtime behaviour, kept for batch/offline callers.
    deadline_ms:
        Per-request time budget measured from submission.  Requests still
        queued past it are dropped *before* compute with a typed
        :class:`~repro.serving.errors.DeadlineExceededError`.  ``None``
        disables deadlines.
    reload_poll_s:
        How often the :class:`~repro.serving.runtime.CheckpointWatcher`
        polls the checkpoint store for a new version.
    autoscale:
        Enable the queue-depth + p99-driven worker autoscaler
        (:class:`~repro.serving.runtime.AutoscaleController`).
    min_workers / max_workers:
        Autoscaler bounds on the elastic pool size.
    autoscale_interval_s:
        Sampling period of the autoscaler control loop.
    target_p99_ms:
        p99 latency objective; sustained breaches scale the pool up, and a
        p99 under half the target is a precondition for scaling down.
    autoscale_queue_per_worker:
        Queue-depth watermark, per worker: depth above it votes to scale
        up, an empty queue votes to scale down.
    autoscale_up_patience / autoscale_down_patience:
        Consecutive breach/idle samples required before acting — the
        hysteresis that stops the controller flapping on noise (scaling
        down is deliberately slower than scaling up).
    autoscale_cooldown_s:
        Minimum time between scaling actions.
    host / port:
        Bind address of the HTTP front-end (:mod:`repro.serving.server`);
        port 0 binds an OS-assigned free port.
    max_body_bytes:
        Largest request body the HTTP front-end accepts.  A declared
        ``Content-Length`` beyond it is refused with HTTP 413 before any
        byte of the body is read, so one oversized client cannot tie a
        connection thread to an unbounded read.
    """

    engine: Literal["sparse", "dense"] = "sparse"
    active_budget: int | None = None
    top_k: int = 5
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    num_workers: int = 2
    queue_capacity: int = 1024
    admission_policy: Literal["shed", "block"] = "shed"
    deadline_ms: float | None = None
    reload_poll_s: float = 1.0
    autoscale: bool = False
    min_workers: int = 1
    max_workers: int = 8
    autoscale_interval_s: float = 0.25
    target_p99_ms: float = 50.0
    autoscale_queue_per_worker: float = 4.0
    autoscale_up_patience: int = 2
    autoscale_down_patience: int = 4
    autoscale_cooldown_s: float = 1.0
    host: str = "127.0.0.1"
    port: int = 8080
    max_body_bytes: int = 1_048_576

    def __post_init__(self) -> None:
        if self.engine not in ("sparse", "dense"):
            raise ValueError("engine must be 'sparse' or 'dense'")
        if self.active_budget is not None and self.active_budget <= 0:
            raise ValueError("active_budget must be positive when provided")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.admission_policy not in ("shed", "block"):
            raise ValueError("admission_policy must be 'shed' or 'block'")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when provided")
        if self.reload_poll_s <= 0:
            raise ValueError("reload_poll_s must be positive")
        if self.min_workers <= 0:
            raise ValueError("min_workers must be positive")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.autoscale and not (
            self.min_workers <= self.num_workers <= self.max_workers
        ):
            raise ValueError(
                "num_workers must lie in [min_workers, max_workers] "
                "when autoscale is enabled"
            )
        if self.autoscale_interval_s <= 0:
            raise ValueError("autoscale_interval_s must be positive")
        if self.target_p99_ms <= 0:
            raise ValueError("target_p99_ms must be positive")
        if self.autoscale_queue_per_worker <= 0:
            raise ValueError("autoscale_queue_per_worker must be positive")
        if self.autoscale_up_patience <= 0:
            raise ValueError("autoscale_up_patience must be positive")
        if self.autoscale_down_patience <= 0:
            raise ValueError("autoscale_down_patience must be positive")
        if self.autoscale_cooldown_s < 0:
            raise ValueError("autoscale_cooldown_s must be non-negative")
        if not 0 <= self.port < 65536:
            raise ValueError("port must lie in [0, 65536)")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")


@dataclass(frozen=True)
class RouterConfig:
    """Parameters of the :class:`repro.serving.router.ReplicaRouter`.

    Attributes
    ----------
    num_replicas:
        How many in-process :class:`~repro.serving.runtime.OnlineRuntime`
        replicas the router builds over one shared checkpoint store.
    health_interval_s:
        Period of the active health-check loop.  Failover detection is
        bounded by twice this interval (one check may already be in
        flight when a replica dies).
    probe_timeout_s:
        Budget for the active liveness probe (a real 1-example predict):
        a replica that does not answer within it is marked not live.
    readiness_max_staleness:
        How many checkpoint versions a replica may lag behind the store's
        latest before readiness fails (its watcher is stuck or
        quarantining everything new).
    retry_max_attempts:
        Total tries per predict request (first attempt included), each on
        a different replica when one is available.
    retry_backoff_base_s / retry_backoff_max_s:
        Capped exponential backoff between attempts:
        ``min(base * 2**(attempt-1), max)``.
    request_deadline_s:
        Total time budget per routed request across all attempts and
        backoff waits; once spent, the last failure is surfaced.
    attempt_timeout_s:
        Per-attempt bound: an attempt that has not resolved within it is
        abandoned (counted as a replica failure — how hung replicas are
        detected mid-request) and the request retries elsewhere.
    breaker_failure_threshold:
        Consecutive failures that trip a replica's circuit breaker open.
    breaker_p99_ms:
        Optional latency trip: with at least ``breaker_window`` recent
        samples, a windowed p99 above this opens the breaker even without
        hard failures.  ``None`` disables the latency trip.
    breaker_window:
        Per-replica rolling latency samples retained for the p99 trip.
    breaker_recovery_s:
        How long an open breaker waits before letting probe requests
        through (half-open state).
    breaker_half_open_probes:
        Successful half-open probes required to close the breaker; any
        probe failure re-opens it.
    degradation_budget_steps:
        Multiplicative LSH ``active_budget`` steps for degradation levels
        ``1..len(steps)`` (level 0 is full quality).  The level after the
        last step additionally disables exact rerank; the final level
        sheds at the router when queues exceed ``degradation_shed_depth``.
    degradation_interval_s:
        Period of the degradation controller loop.
    degradation_queue_high:
        Per-replica queue depth above which a tick votes to degrade.
    degradation_up_patience / degradation_down_patience:
        Consecutive overloaded/idle ticks before stepping the ladder up or
        down (recovery is deliberately slower than degradation).
    degradation_shed_depth:
        At the deepest degradation level, requests arriving while the
        chosen replica's queue is at least this deep are shed at the
        router with a typed 429.
    seed:
        Seed of the router's power-of-two-choices sampler.
    """

    num_replicas: int = 2
    health_interval_s: float = 0.25
    probe_timeout_s: float = 1.0
    readiness_max_staleness: int = 2
    retry_max_attempts: int = 3
    retry_backoff_base_s: float = 0.01
    retry_backoff_max_s: float = 0.25
    request_deadline_s: float = 2.0
    attempt_timeout_s: float = 1.0
    breaker_failure_threshold: int = 5
    breaker_p99_ms: float | None = None
    breaker_window: int = 64
    breaker_recovery_s: float = 1.0
    breaker_half_open_probes: int = 2
    degradation_budget_steps: tuple[float, ...] = (0.5, 0.25)
    degradation_interval_s: float = 0.5
    degradation_queue_high: float = 8.0
    degradation_up_patience: int = 2
    degradation_down_patience: int = 4
    degradation_shed_depth: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be positive")
        if self.probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive")
        if self.readiness_max_staleness < 0:
            raise ValueError("readiness_max_staleness must be non-negative")
        if self.retry_max_attempts <= 0:
            raise ValueError("retry_max_attempts must be positive")
        if self.retry_backoff_base_s < 0:
            raise ValueError("retry_backoff_base_s must be non-negative")
        if self.retry_backoff_max_s < self.retry_backoff_base_s:
            raise ValueError("retry_backoff_max_s must be >= retry_backoff_base_s")
        if self.request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive")
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if self.breaker_failure_threshold <= 0:
            raise ValueError("breaker_failure_threshold must be positive")
        if self.breaker_p99_ms is not None and self.breaker_p99_ms <= 0:
            raise ValueError("breaker_p99_ms must be positive when provided")
        if self.breaker_window <= 0:
            raise ValueError("breaker_window must be positive")
        if self.breaker_recovery_s < 0:
            raise ValueError("breaker_recovery_s must be non-negative")
        if self.breaker_half_open_probes <= 0:
            raise ValueError("breaker_half_open_probes must be positive")
        # A non-tuple (a JSON list, say) would break dataclass equality and
        # hashing downstream; coerce rather than reject.
        object.__setattr__(
            self,
            "degradation_budget_steps",
            tuple(float(step) for step in self.degradation_budget_steps),
        )
        for step in self.degradation_budget_steps:
            if not 0.0 < step < 1.0:
                raise ValueError("degradation_budget_steps must lie in (0, 1)")
        if any(
            later >= earlier
            for earlier, later in zip(
                self.degradation_budget_steps, self.degradation_budget_steps[1:]
            )
        ):
            raise ValueError("degradation_budget_steps must be strictly decreasing")
        if self.degradation_interval_s <= 0:
            raise ValueError("degradation_interval_s must be positive")
        if self.degradation_queue_high <= 0:
            raise ValueError("degradation_queue_high must be positive")
        if self.degradation_up_patience <= 0:
            raise ValueError("degradation_up_patience must be positive")
        if self.degradation_down_patience <= 0:
            raise ValueError("degradation_down_patience must be positive")
        if self.degradation_shed_depth <= 0:
            raise ValueError("degradation_shed_depth must be positive")

    @property
    def max_degradation_level(self) -> int:
        """Deepest ladder level: budget steps, then no-rerank, then shed."""
        return len(self.degradation_budget_steps) + 2


# ----------------------------------------------------------------------
# JSON-friendly (de)serialisation used by the checkpoint format
# ----------------------------------------------------------------------
def _reject_unknown(cls: type, data: Mapping[str, Any], label: str) -> None:
    """Raise ``ValueError`` naming any key of ``data`` that is not a field.

    Every ``*_from_dict`` below is strict through this helper: a typo in a
    config file (or a field removed from the schema) must surface with the
    offending name, never be silently dropped.
    """
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - valid)
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        raise ValueError(
            f"unknown {label} field{'s' if len(unknown) > 1 else ''} {names}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )


def lsh_config_to_dict(config: LSHConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of an LSH config."""
    return asdict(config)


def lsh_config_from_dict(data: Mapping[str, Any]) -> LSHConfig:
    """Rebuild an :class:`LSHConfig` from its dict form (strict)."""
    _reject_unknown(LSHConfig, data, "lsh config")
    return LSHConfig(**data)


def rebuild_schedule_config_to_dict(config: RebuildScheduleConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a rebuild schedule."""
    return asdict(config)


def rebuild_schedule_config_from_dict(data: Mapping[str, Any]) -> RebuildScheduleConfig:
    """Rebuild a :class:`RebuildScheduleConfig` from its dict form (strict)."""
    _reject_unknown(RebuildScheduleConfig, data, "rebuild schedule config")
    return RebuildScheduleConfig(**data)


def sampling_config_to_dict(config: SamplingConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a sampling config."""
    return asdict(config)


def sampling_config_from_dict(data: Mapping[str, Any]) -> SamplingConfig:
    """Rebuild a :class:`SamplingConfig` from its dict form (strict)."""
    _reject_unknown(SamplingConfig, data, "sampling config")
    return SamplingConfig(**data)


def layer_config_to_dict(config: LayerConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a layer config."""
    return asdict(config)


def layer_config_from_dict(data: Mapping[str, Any]) -> LayerConfig:
    """Rebuild a :class:`LayerConfig` from its dict form (strict, recursive)."""
    _reject_unknown(LayerConfig, data, "layer config")
    lsh = data.get("lsh")
    return LayerConfig(
        size=int(data["size"]),
        activation=data.get("activation", "relu"),
        lsh=lsh_config_from_dict(lsh) if lsh is not None else None,
        sampling=(
            sampling_config_from_dict(data["sampling"])
            if "sampling" in data
            else SamplingConfig()
        ),
        rebuild=(
            rebuild_schedule_config_from_dict(data["rebuild"])
            if "rebuild" in data
            else RebuildScheduleConfig()
        ),
    )


def network_config_to_dict(config: SlideNetworkConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a network config."""
    data = asdict(config)
    data["layers"] = list(data["layers"])
    return data


def network_config_from_dict(data: Mapping[str, Any]) -> SlideNetworkConfig:
    """Rebuild a :class:`SlideNetworkConfig` from its dict form (strict)."""
    _reject_unknown(SlideNetworkConfig, data, "network config")
    return SlideNetworkConfig(
        input_dim=int(data["input_dim"]),
        layers=tuple(layer_config_from_dict(layer) for layer in data["layers"]),
        seed=int(data["seed"]),
    )


def optimizer_config_to_dict(config: OptimizerConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of an optimiser config."""
    return asdict(config)


def optimizer_config_from_dict(data: Mapping[str, Any]) -> OptimizerConfig:
    """Rebuild an :class:`OptimizerConfig` from its dict form (strict)."""
    _reject_unknown(OptimizerConfig, data, "optimizer config")
    return OptimizerConfig(**data)


def training_config_to_dict(config: TrainingConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a training config."""
    return asdict(config)


def training_config_from_dict(data: Mapping[str, Any]) -> TrainingConfig:
    """Rebuild a :class:`TrainingConfig` from its dict form (strict)."""
    _reject_unknown(TrainingConfig, data, "training config")
    kwargs = dict(data)
    if "optimizer" in kwargs:
        kwargs["optimizer"] = optimizer_config_from_dict(kwargs["optimizer"])
    return TrainingConfig(**kwargs)


def fault_tolerance_config_to_dict(config: FaultToleranceConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a fault-tolerance config."""
    return asdict(config)


def fault_tolerance_config_from_dict(data: Mapping[str, Any]) -> FaultToleranceConfig:
    """Rebuild a :class:`FaultToleranceConfig` from its dict form (strict)."""
    valid = {f.name for f in fields(FaultToleranceConfig)}
    unknown = sorted(set(data) - valid)
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        raise ValueError(
            f"unknown fault tolerance config field"
            f"{'s' if len(unknown) > 1 else ''} {names}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )
    coerced: dict[str, Any] = {}
    for name, value in data.items():
        checker = (
            _check_int
            if name in ("max_restarts", "checkpoint_every_batches", "checkpoint_keep_last")
            else _check_float
        )
        try:
            coerced[name] = checker(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"fault tolerance config field {name!r}: invalid value {value!r}"
            ) from None
    return FaultToleranceConfig(**coerced)


def serving_config_to_dict(config: ServingConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a serving config."""
    return asdict(config)


def serving_config_from_dict(data: Mapping[str, Any]) -> ServingConfig:
    """Rebuild a :class:`ServingConfig` from its dict form.

    Strict: unknown keys and wrongly typed values raise ``ValueError``
    messages that *name the offending field*, so a typo in a config file
    surfaces as ``unknown serving config field 'workerz'`` rather than an
    opaque ``TypeError`` out of the dataclass constructor.
    """
    valid = {f.name for f in fields(ServingConfig)}
    unknown = sorted(set(data) - valid)
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        raise ValueError(
            f"unknown serving config field{'s' if len(unknown) > 1 else ''} "
            f"{names}; valid fields: {', '.join(sorted(valid))}"
        )
    coerced: dict[str, Any] = {}
    for name, value in data.items():
        checker = _SERVING_FIELD_CHECKS[name]
        try:
            coerced[name] = checker(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"serving config field {name!r}: invalid value {value!r}"
            ) from None
    try:
        return ServingConfig(**coerced)
    except (TypeError, ValueError) as exc:
        # __post_init__ messages already name the field ("top_k must be
        # positive"); re-raise uniformly as ValueError for CLI handling.
        raise ValueError(f"invalid serving config: {exc}") from exc


def load_serving_config(path: str | Path) -> ServingConfig:
    """Read a JSON file into a :class:`ServingConfig` (strict, see above)."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"serving config {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"serving config {path} must be a JSON object")
    return serving_config_from_dict(data)


def router_config_to_dict(config: RouterConfig) -> dict[str, Any]:
    """A plain-dict (JSON-serialisable) view of a router config."""
    data = asdict(config)
    data["degradation_budget_steps"] = list(data["degradation_budget_steps"])
    return data


def router_config_from_dict(data: Mapping[str, Any]) -> RouterConfig:
    """Rebuild a :class:`RouterConfig` from its dict form (strict).

    Mirrors :func:`serving_config_from_dict`: unknown keys and wrongly
    typed values raise ``ValueError`` messages naming the offending field.
    """
    valid = {f.name for f in fields(RouterConfig)}
    unknown = sorted(set(data) - valid)
    if unknown:
        names = ", ".join(repr(name) for name in unknown)
        raise ValueError(
            f"unknown router config field{'s' if len(unknown) > 1 else ''} "
            f"{names}; valid fields: {', '.join(sorted(valid))}"
        )
    coerced: dict[str, Any] = {}
    for name, value in data.items():
        checker = _ROUTER_FIELD_CHECKS[name]
        try:
            coerced[name] = checker(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"router config field {name!r}: invalid value {value!r}"
            ) from None
    try:
        return RouterConfig(**coerced)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid router config: {exc}") from exc


def _check_str(value: Any) -> str:
    if not isinstance(value, str):
        raise TypeError
    return value


def _check_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise TypeError
    return value


def _check_int(value: Any) -> int:
    # bool is an int subclass; "true" is never a worker count.
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError
    return value


def _check_float(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError
    return float(value)


def _check_optional(check):
    def wrapped(value: Any):
        return None if value is None else check(value)

    return wrapped


_SERVING_FIELD_CHECKS: dict[str, Any] = {
    "engine": _check_str,
    "active_budget": _check_optional(_check_int),
    "top_k": _check_int,
    "max_batch_size": _check_int,
    "max_wait_ms": _check_float,
    "num_workers": _check_int,
    "queue_capacity": _check_int,
    "admission_policy": _check_str,
    "deadline_ms": _check_optional(_check_float),
    "reload_poll_s": _check_float,
    "autoscale": _check_bool,
    "min_workers": _check_int,
    "max_workers": _check_int,
    "autoscale_interval_s": _check_float,
    "target_p99_ms": _check_float,
    "autoscale_queue_per_worker": _check_float,
    "autoscale_up_patience": _check_int,
    "autoscale_down_patience": _check_int,
    "autoscale_cooldown_s": _check_float,
    "host": _check_str,
    "port": _check_int,
    "max_body_bytes": _check_int,
}


def _check_float_list(value: Any) -> tuple[float, ...]:
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise TypeError
    return tuple(_check_float(item) for item in value)


_ROUTER_FIELD_CHECKS: dict[str, Any] = {
    "num_replicas": _check_int,
    "health_interval_s": _check_float,
    "probe_timeout_s": _check_float,
    "readiness_max_staleness": _check_int,
    "retry_max_attempts": _check_int,
    "retry_backoff_base_s": _check_float,
    "retry_backoff_max_s": _check_float,
    "request_deadline_s": _check_float,
    "attempt_timeout_s": _check_float,
    "breaker_failure_threshold": _check_int,
    "breaker_p99_ms": _check_optional(_check_float),
    "breaker_window": _check_int,
    "breaker_recovery_s": _check_float,
    "breaker_half_open_probes": _check_int,
    "degradation_budget_steps": _check_float_list,
    "degradation_interval_s": _check_float,
    "degradation_queue_high": _check_float,
    "degradation_up_patience": _check_int,
    "degradation_down_patience": _check_int,
    "degradation_shed_depth": _check_int,
    "seed": _check_int,
}


# ----------------------------------------------------------------------
# Codec registry — the machine-readable map from every *Config dataclass
# to its (to_dict, from_dict) pair.  CFG001 (tools/lint) checks this
# registry for completeness and round-trips the config_examples()
# instances, so a knob added to a dataclass without a codec update fails
# lint rather than silently vanishing from checkpoints.
# ----------------------------------------------------------------------
CONFIG_CODECS: dict[type, tuple[Any, Any]] = {
    LSHConfig: (lsh_config_to_dict, lsh_config_from_dict),
    RebuildScheduleConfig: (
        rebuild_schedule_config_to_dict,
        rebuild_schedule_config_from_dict,
    ),
    SamplingConfig: (sampling_config_to_dict, sampling_config_from_dict),
    LayerConfig: (layer_config_to_dict, layer_config_from_dict),
    SlideNetworkConfig: (network_config_to_dict, network_config_from_dict),
    OptimizerConfig: (optimizer_config_to_dict, optimizer_config_from_dict),
    TrainingConfig: (training_config_to_dict, training_config_from_dict),
    ServingConfig: (serving_config_to_dict, serving_config_from_dict),
    RouterConfig: (router_config_to_dict, router_config_from_dict),
    FaultToleranceConfig: (
        fault_tolerance_config_to_dict,
        fault_tolerance_config_from_dict,
    ),
}


def config_examples() -> dict[type, Any]:
    """One representative instance per registered config class.

    Used by CFG001 and the round-trip tests.  Values deliberately differ
    from every field default — a codec that drops a field and lets the
    default leak back in would still pass a default-valued round-trip.
    """
    lsh = LSHConfig(
        hash_family="dwta",
        k=4,
        l=8,
        bucket_size=64,
        insertion_policy="reservoir",
        simhash_sparsity=0.5,
        wta_bin_size=4,
        doph_top_k=16,
    )
    rebuild = RebuildScheduleConfig(initial_period=10, decay=0.05, max_period=500)
    sampling = SamplingConfig(
        strategy="topk",
        target_active=32,
        hard_threshold=3,
        include_labels=False,
        min_active=8,
    )
    layer = LayerConfig(
        size=64, activation="softmax", lsh=lsh, sampling=sampling, rebuild=rebuild
    )
    optimizer = OptimizerConfig(
        name="sgd",
        learning_rate=5e-4,
        beta1=0.8,
        beta2=0.99,
        epsilon=1e-7,
        momentum=0.5,
        update_clip=2.0,
    )
    return {
        LSHConfig: lsh,
        RebuildScheduleConfig: rebuild,
        SamplingConfig: sampling,
        LayerConfig: layer,
        SlideNetworkConfig: SlideNetworkConfig(
            input_dim=16,
            layers=(LayerConfig(size=32, activation="relu"), layer),
            seed=7,
        ),
        OptimizerConfig: optimizer,
        TrainingConfig: TrainingConfig(
            batch_size=64,
            epochs=2,
            optimizer=optimizer,
            shuffle=False,
            seed=3,
            eval_every=10,
            eval_samples=128,
        ),
        ServingConfig: ServingConfig(
            engine="dense",
            active_budget=128,
            top_k=3,
            max_batch_size=16,
            max_wait_ms=1.0,
            num_workers=3,
            queue_capacity=256,
            admission_policy="block",
            deadline_ms=100.0,
            reload_poll_s=0.5,
            autoscale=True,
            min_workers=1,
            max_workers=4,
            autoscale_interval_s=0.5,
            target_p99_ms=25.0,
            autoscale_queue_per_worker=2.0,
            autoscale_up_patience=3,
            autoscale_down_patience=5,
            autoscale_cooldown_s=2.0,
            host="0.0.0.0",
            port=9090,
            max_body_bytes=65536,
        ),
        RouterConfig: RouterConfig(
            num_replicas=3,
            health_interval_s=0.5,
            probe_timeout_s=0.5,
            readiness_max_staleness=1,
            retry_max_attempts=2,
            retry_backoff_base_s=0.02,
            retry_backoff_max_s=0.5,
            request_deadline_s=1.0,
            attempt_timeout_s=0.5,
            breaker_failure_threshold=3,
            breaker_p99_ms=25.0,
            breaker_window=32,
            breaker_recovery_s=0.5,
            breaker_half_open_probes=1,
            degradation_budget_steps=(0.6, 0.3),
            degradation_interval_s=0.25,
            degradation_queue_high=4.0,
            degradation_up_patience=1,
            degradation_down_patience=2,
            degradation_shed_depth=16,
            seed=11,
        ),
        FaultToleranceConfig: FaultToleranceConfig(
            heartbeat_timeout_s=15.0,
            poll_interval_s=0.1,
            max_restarts=1,
            backoff_base_s=0.05,
            backoff_max_s=2.0,
            checkpoint_every_s=1.0,
            checkpoint_every_batches=5,
            checkpoint_keep_last=2,
        ),
    }
