"""Evaluation metrics: precision@k and convergence-time extraction."""

from repro.metrics.accuracy import precision_at_k, precision_at_1
from repro.metrics.convergence import (
    time_to_accuracy,
    convergence_time,
    accuracy_at_time,
)

__all__ = [
    "precision_at_k",
    "precision_at_1",
    "time_to_accuracy",
    "convergence_time",
    "accuracy_at_time",
]
