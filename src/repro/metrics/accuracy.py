"""Precision@k for multi-label (extreme classification) predictions.

Unlike :mod:`repro.core.inference`, which evaluates a live network, these
functions operate on plain score matrices / label lists so they can be used
by any model (SLIDE, dense, sampled softmax) and by unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray
from repro.utils.topk import top_k_indices

__all__ = ["precision_at_k", "precision_at_1"]


def precision_at_k(
    scores: FloatArray,
    labels: list[IntArray],
    k: int = 1,
    skip_unlabeled: bool = True,
) -> float:
    """Mean precision@k.

    Parameters
    ----------
    scores:
        ``(num_examples, num_classes)`` score matrix.
    labels:
        One array of true label indices per example.
    skip_unlabeled:
        Examples without labels carry no signal for the metric.  With the
        default ``True`` they are dropped from the mean; ``False`` raises
        on them instead — the same strict contract as
        :func:`repro.core.inference.evaluate_precision_at_k` — so
        data-pipeline bugs surface rather than silently shrinking the
        denominator.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("scores must be a 2-D matrix")
    if len(labels) != scores.shape[0]:
        raise ValueError("labels must align with the rows of scores")
    if k <= 0:
        raise ValueError("k must be positive")
    if not skip_unlabeled:
        unlabeled = sum(
            1 for true_labels in labels if np.asarray(true_labels).size == 0
        )
        if unlabeled:
            raise ValueError(
                f"{unlabeled} of {len(labels)} examples have no labels; "
                "pass skip_unlabeled=True to drop them"
            )

    per_example = []
    for row, true_labels in enumerate(labels):
        true_labels = np.asarray(true_labels, dtype=np.int64)
        if true_labels.size == 0:
            continue
        predicted = top_k_indices(scores[row], k)
        hits = np.isin(predicted, true_labels).sum()
        per_example.append(hits / k)
    if not per_example:
        return 0.0
    return float(np.mean(per_example))


def precision_at_1(scores: FloatArray, labels: list[IntArray]) -> float:
    """Precision@1 — the accuracy metric used throughout the paper."""
    return precision_at_k(scores, labels, k=1)
