"""Convergence-time extraction from (time, accuracy) series.

The scalability figures (9 and 13) plot *convergence time* — the wall-clock
time at which a run first reaches (a fraction of) its final accuracy — as a
function of core count.  These helpers compute that quantity from arbitrary
time/accuracy series.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = ["time_to_accuracy", "convergence_time", "accuracy_at_time"]


def _validate(times: FloatArray, accuracies: FloatArray) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=np.float64)
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if times.ndim != 1 or accuracies.ndim != 1:
        raise ValueError("times and accuracies must be one-dimensional")
    if times.shape != accuracies.shape:
        raise ValueError("times and accuracies must have the same length")
    if times.size and np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    return times, accuracies


def time_to_accuracy(times: FloatArray, accuracies: FloatArray, target: float) -> float | None:
    """First time at which ``accuracies`` reaches ``target`` (None if never)."""
    times, accuracies = _validate(times, accuracies)
    reached = np.flatnonzero(accuracies >= target)
    if reached.size == 0:
        return None
    return float(times[reached[0]])


def convergence_time(
    times: FloatArray, accuracies: FloatArray, fraction_of_best: float = 0.98
) -> float:
    """Time to reach ``fraction_of_best`` of the series' maximum accuracy."""
    times, accuracies = _validate(times, accuracies)
    if accuracies.size == 0:
        return 0.0
    if not 0 < fraction_of_best <= 1:
        raise ValueError("fraction_of_best must lie in (0, 1]")
    target = float(accuracies.max()) * fraction_of_best
    reached = time_to_accuracy(times, accuracies, target)
    return float(times[-1]) if reached is None else reached


def accuracy_at_time(times: FloatArray, accuracies: FloatArray, at_time: float) -> float:
    """Best accuracy achieved by ``at_time`` (0 if the run had not started)."""
    times, accuracies = _validate(times, accuracies)
    if accuracies.size == 0:
        return 0.0
    mask = times <= at_time
    if not mask.any():
        return 0.0
    return float(accuracies[mask].max())
