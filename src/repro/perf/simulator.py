"""Wall-clock simulation: join measured per-iteration work with device profiles.

Given a training history (per-iteration loss/accuracy plus the *measured*
active-neuron and active-weight counts) and a device profile, the simulator
produces the cumulative time axis used by the paper's time-vs-accuracy and
scalability figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import TrainingHistory
from repro.perf.cost_model import WorkloadCounts
from repro.perf.devices import DeviceProfile

__all__ = ["SimulatedRun", "WallClockSimulator"]


@dataclass
class SimulatedRun:
    """A time-vs-accuracy series attributed to one device profile."""

    label: str
    iterations: np.ndarray
    cumulative_seconds: np.ndarray
    accuracies: np.ndarray
    losses: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def time_to_accuracy(self, target: float) -> float | None:
        """First simulated time at which ``target`` accuracy is reached."""
        reached = np.flatnonzero(self.accuracies >= target)
        if reached.size == 0:
            return None
        return float(self.cumulative_seconds[reached[0]])

    def convergence_time(self, fraction_of_best: float = 0.98) -> float:
        """Time to reach ``fraction_of_best`` of the run's best accuracy."""
        if self.accuracies.size == 0:
            return 0.0
        target = float(self.accuracies.max()) * fraction_of_best
        time = self.time_to_accuracy(target)
        return float(self.cumulative_seconds[-1]) if time is None else time

    def final_accuracy(self) -> float:
        return float(self.accuracies[-1]) if self.accuracies.size else 0.0


class WallClockSimulator:
    """Attributes wall-clock time to per-iteration workloads."""

    def __init__(self, profile: DeviceProfile, cores: int | None = None) -> None:
        self.profile = profile
        self.cores = cores

    def iteration_time(self, work: WorkloadCounts) -> float:
        """Seconds one iteration of ``work`` takes on this device."""
        return self.profile.iteration_seconds(work, cores=self.cores)

    def simulate(
        self,
        label: str,
        per_iteration_work: list[WorkloadCounts],
        accuracies: list[float],
        losses: list[float] | None = None,
    ) -> SimulatedRun:
        """Build a :class:`SimulatedRun` from aligned work/accuracy series."""
        if len(per_iteration_work) != len(accuracies):
            raise ValueError("work and accuracy series must have the same length")
        times = np.array([self.iteration_time(w) for w in per_iteration_work])
        return SimulatedRun(
            label=label,
            iterations=np.arange(1, len(per_iteration_work) + 1),
            cumulative_seconds=np.cumsum(times),
            accuracies=np.asarray(accuracies, dtype=np.float64),
            losses=np.asarray(losses, dtype=np.float64) if losses is not None else np.zeros(0),
        )

    def simulate_from_history(
        self,
        label: str,
        history: TrainingHistory,
        work_for_record,
    ) -> SimulatedRun:
        """Simulate from a :class:`TrainingHistory`.

        ``work_for_record`` maps an :class:`IterationRecord` to a
        :class:`WorkloadCounts`; the accuracy series carries forward the last
        evaluated accuracy for iterations without an evaluation.
        """
        works = [work_for_record(record) for record in history.records]
        accuracies: list[float] = []
        last = 0.0
        for record in history.records:
            if record.accuracy is not None:
                last = record.accuracy
            accuracies.append(last)
        losses = [record.loss for record in history.records]
        return self.simulate(label, works, accuracies, losses)
