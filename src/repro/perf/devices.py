"""Device profiles used to attribute wall-clock time to measured work.

The profiles are **calibrated to the paper's own measurements**, not to
vendor peak numbers:

* per-core utilisation of SLIDE and TF-CPU at 8/16/32 threads comes from
  Table 2 of the paper (82/81/85 % vs 45/35/32 %) and is interpolated /
  extrapolated to other core counts;
* the effective throughput constants are chosen so the absolute per-iteration
  times at the paper's configuration (44 cores, V100) land near the wall
  clocks reported in Section 5 (≈2 h SLIDE vs ≈5.5 h TF-GPU vs ≈20 h TF-CPU
  on Amazon-670K).

The calibration constants are module-level and documented so ablation benches
can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perf.cost_model import WorkloadCounts

__all__ = [
    "UtilizationCurve",
    "DeviceProfile",
    "CPUProfile",
    "GPUProfile",
    "SLIDE_CPU_PROFILE",
    "TF_CPU_PROFILE",
    "TF_GPU_PROFILE",
    "SLIDE_UTILIZATION",
    "TF_CPU_UTILIZATION",
]

# ----------------------------------------------------------------------
# Calibration constants (seconds per operation / operations per second)
# ----------------------------------------------------------------------
# Scattered gather/scatter MACs (SLIDE's sparse output-layer updates):
# ~12.5 M random-access operations per second per core — DRAM-latency bound.
SPARSE_MAC_SECONDS = 8.0e-8
# Dense BLAS MACs on a CPU core under TF (AVX2, but framework overhead and
# sparse-input handling keep it far from peak): ~1.3 GMAC/s per core.
DENSE_CPU_MAC_SECONDS = 7.5e-10
# Hash-code arithmetic (additions) — same random-access cost class as sparse MACs.
HASH_OP_SECONDS = 8.0e-8
# One hash-table bucket probe or insertion (pointer chase + short scan).
TABLE_LOOKUP_SECONDS = 1.0e-6
# Effective V100 throughput for these extreme-classification workloads
# (memory-bound wide-but-short matmuls; calibrated to the paper's ~5.5 h
# TF-GPU convergence time on Amazon-670K).
GPU_EFFECTIVE_MACS_PER_SECOND = 5.0e10
# Fixed per-iteration overhead of a GPU training step (kernel launches,
# host-device transfer of the sparse batch).
GPU_ITERATION_OVERHEAD_SECONDS = 2.0e-4


@dataclass(frozen=True)
class UtilizationCurve:
    """Piecewise-linear core-utilisation curve ``cores -> utilisation``.

    Anchored at measured points (Table 2) and linearly interpolated between
    them; clamped to the end values outside the measured range.
    """

    cores: tuple[float, ...]
    utilization: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cores) != len(self.utilization) or len(self.cores) < 2:
            raise ValueError("need at least two (cores, utilization) anchor points")
        if list(self.cores) != sorted(self.cores):
            raise ValueError("core anchors must be sorted ascending")
        if any(not 0 < u <= 1 for u in self.utilization):
            raise ValueError("utilization values must lie in (0, 1]")

    def __call__(self, cores: float) -> float:
        return float(np.interp(cores, self.cores, self.utilization))

    def speedup(self, cores: float) -> float:
        """Effective parallel speedup: ``cores * utilisation(cores)``."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        return float(cores) * self(cores)


# Table 2 of the paper, extended with a conventional ~95 % single-core anchor
# and a flat extrapolation to 44 cores.
SLIDE_UTILIZATION = UtilizationCurve(
    cores=(1, 2, 8, 16, 32, 44),
    utilization=(0.95, 0.93, 0.82, 0.81, 0.85, 0.86),
)
TF_CPU_UTILIZATION = UtilizationCurve(
    cores=(1, 2, 8, 16, 32, 44),
    utilization=(0.95, 0.90, 0.45, 0.35, 0.32, 0.30),
)


@dataclass(frozen=True)
class DeviceProfile:
    """Base class: converts a :class:`WorkloadCounts` into seconds."""

    name: str

    def iteration_seconds(self, work: WorkloadCounts, cores: int | None = None) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class CPUProfile(DeviceProfile):
    """Multi-core CPU with a utilisation curve and per-op-category costs."""

    max_cores: int = 44
    utilization: UtilizationCurve = field(default_factory=lambda: SLIDE_UTILIZATION)
    dense_mac_seconds: float = DENSE_CPU_MAC_SECONDS
    sparse_mac_seconds: float = SPARSE_MAC_SECONDS
    hash_op_seconds: float = HASH_OP_SECONDS
    table_lookup_seconds: float = TABLE_LOOKUP_SECONDS

    def single_core_seconds(self, work: WorkloadCounts) -> float:
        """Time to execute ``work`` on one core."""
        return (
            work.dense_macs * self.dense_mac_seconds
            + work.sparse_macs * self.sparse_mac_seconds
            + work.hash_ops * self.hash_op_seconds
            + work.table_lookups * self.table_lookup_seconds
        )

    def iteration_seconds(self, work: WorkloadCounts, cores: int | None = None) -> float:
        cores = self.max_cores if cores is None else int(cores)
        if cores <= 0:
            raise ValueError("cores must be positive")
        cores = min(cores, self.max_cores)
        return self.single_core_seconds(work) / self.utilization.speedup(cores)


@dataclass(frozen=True)
class GPUProfile(DeviceProfile):
    """Single-device GPU: throughput plus a fixed per-iteration overhead."""

    effective_macs_per_second: float = GPU_EFFECTIVE_MACS_PER_SECOND
    iteration_overhead_seconds: float = GPU_ITERATION_OVERHEAD_SECONDS

    def iteration_seconds(self, work: WorkloadCounts, cores: int | None = None) -> float:
        # The GPU is oblivious to CPU core count (the flat blue line in Fig 9).
        del cores
        compute = work.total_macs / self.effective_macs_per_second
        return compute + self.iteration_overhead_seconds


# Canonical profiles used throughout the harness.
SLIDE_CPU_PROFILE = CPUProfile(name="SLIDE-CPU", utilization=SLIDE_UTILIZATION)
TF_CPU_PROFILE = CPUProfile(name="TF-CPU", utilization=TF_CPU_UTILIZATION)
TF_GPU_PROFILE = GPUProfile(name="TF-GPU (V100)")
