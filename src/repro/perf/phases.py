"""Cumulative wall-clock accounting for named training phases.

The batched training step decomposes into a small number of phases — LSH
hashing/probing, the gather + GEMM math, the optimiser update, and the
periodic hash-table rebuild.  :class:`PhaseTimer` accumulates real
``perf_counter`` seconds per phase with negligible overhead (two clock reads
per instrumented section), so the throughput benchmarks can report *where*
a training run spends its time and track the rebuild share across PRs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall-clock seconds under named phases."""

    __slots__ = ("totals",)

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and credit it to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def snapshot(self) -> dict[str, float]:
        """Copy of the accumulated per-phase totals."""
        return dict(self.totals)

    def shares(self) -> dict[str, float]:
        """Per-phase fraction of the total accumulated time."""
        total = sum(self.totals.values())
        if total <= 0.0:
            return {name: 0.0 for name in self.totals}
        return {name: seconds / total for name, seconds in self.totals.items()}

    def reset(self) -> None:
        """Drop all accumulated totals."""
        self.totals.clear()
