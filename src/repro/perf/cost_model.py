"""Operation counting for SLIDE and the baselines.

Per-iteration *work* is the quantity this reproduction measures exactly: the
SLIDE implementation reports its true active-neuron / active-weight counts,
and the formulas here convert them (plus the hash/table bookkeeping the
algorithm performs) into a :class:`WorkloadCounts` record.  The device
profiles in :mod:`repro.perf.devices` then attribute time to those counts.

Terminology: a "MAC" is one multiply-accumulate; forward + backward passes
are charged 3 MACs per active weight (forward product, weight gradient,
delta propagation), the standard rule of thumb.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WorkloadCounts",
    "slide_iteration_work",
    "dense_iteration_work",
    "sampled_softmax_iteration_work",
]

# Forward + weight-gradient + delta-propagation passes per active weight.
_PASSES_PER_WEIGHT = 3


@dataclass(frozen=True)
class WorkloadCounts:
    """Operation counts for one training iteration (one mini-batch).

    Attributes
    ----------
    dense_macs:
        Multiply-accumulates executed as dense BLAS kernels (contiguous
        access; the baselines' work, and the dense hidden layer of SLIDE is
        also charged here because its input gather is contiguous per row).
    sparse_macs:
        Multiply-accumulates executed as scattered gather/scatter operations
        (SLIDE's active-weight updates in the huge output layer).
    hash_ops:
        Elementary operations spent computing LSH hash codes.
    table_lookups:
        Hash-table bucket probes (queries plus insertions).
    bytes_touched:
        Approximate bytes of parameter/activation data read or written.
    """

    dense_macs: float = 0.0
    sparse_macs: float = 0.0
    hash_ops: float = 0.0
    table_lookups: float = 0.0
    bytes_touched: float = 0.0

    def __add__(self, other: "WorkloadCounts") -> "WorkloadCounts":
        return WorkloadCounts(
            dense_macs=self.dense_macs + other.dense_macs,
            sparse_macs=self.sparse_macs + other.sparse_macs,
            hash_ops=self.hash_ops + other.hash_ops,
            table_lookups=self.table_lookups + other.table_lookups,
            bytes_touched=self.bytes_touched + other.bytes_touched,
        )

    def scaled(self, factor: float) -> "WorkloadCounts":
        """Multiply every count by ``factor`` (e.g. iterations per epoch)."""
        return WorkloadCounts(
            dense_macs=self.dense_macs * factor,
            sparse_macs=self.sparse_macs * factor,
            hash_ops=self.hash_ops * factor,
            table_lookups=self.table_lookups * factor,
            bytes_touched=self.bytes_touched * factor,
        )

    @property
    def total_macs(self) -> float:
        return self.dense_macs + self.sparse_macs


def slide_iteration_work(
    batch_size: int,
    avg_input_nnz: float,
    hidden_dim: int,
    avg_active_output: float,
    k: int,
    l: int,
    rebuild_fraction: float = 0.02,
    output_dim: int | None = None,
    bytes_per_value: int = 4,
) -> WorkloadCounts:
    """Work performed by one SLIDE iteration.

    Parameters
    ----------
    avg_active_output:
        Mean number of active output neurons per sample (measured by the
        training loop; ~1000 for Delicious-200K, ~3000 for Amazon-670K in the
        paper).
    rebuild_fraction:
        Fraction of output neurons re-hashed per iteration, amortising the
        exponential-decay rebuild schedule.
    """
    if batch_size <= 0 or hidden_dim <= 0:
        raise ValueError("batch_size and hidden_dim must be positive")
    if avg_input_nnz < 0 or avg_active_output < 0:
        raise ValueError("work counts cannot be negative")

    # Hidden layer: dense rows over a sparse input (contiguous per row).
    hidden_weights = avg_input_nnz * hidden_dim
    # Output layer: only the active neurons' rows are touched.
    output_weights = hidden_dim * avg_active_output

    dense_macs = _PASSES_PER_WEIGHT * batch_size * hidden_weights
    sparse_macs = _PASSES_PER_WEIGHT * batch_size * output_weights

    # Hashing the output layer's input (the hidden activation, ~hidden_dim/3
    # coordinates per SimHash projection) for every sample.
    hash_ops = batch_size * k * l * (hidden_dim / 3.0)
    # One bucket probe per table per sample plus amortised re-insertions.
    rebuild_items = rebuild_fraction * (output_dim if output_dim else avg_active_output)
    table_lookups = batch_size * l + rebuild_items * l

    bytes_touched = bytes_per_value * (
        batch_size * (hidden_weights + output_weights) * 2  # read + write
        + batch_size * (hidden_dim + avg_active_output)
    )
    return WorkloadCounts(
        dense_macs=dense_macs,
        sparse_macs=sparse_macs,
        hash_ops=hash_ops,
        table_lookups=table_lookups,
        bytes_touched=bytes_touched,
    )


def dense_iteration_work(
    batch_size: int,
    avg_input_nnz: float,
    hidden_dim: int,
    output_dim: int,
    bytes_per_value: int = 4,
) -> WorkloadCounts:
    """Work performed by one full-softmax dense iteration (the TF baselines).

    TF's sparse input pipelines avoid multiplying by explicit zeros in the
    first layer, so the input layer is charged at ``avg_input_nnz``; the
    output layer is a full dense matmul over every class.
    """
    if min(batch_size, hidden_dim, output_dim) <= 0:
        raise ValueError("batch_size, hidden_dim and output_dim must be positive")
    hidden_weights = avg_input_nnz * hidden_dim
    output_weights = hidden_dim * output_dim
    dense_macs = _PASSES_PER_WEIGHT * batch_size * (hidden_weights + output_weights)
    bytes_touched = bytes_per_value * (
        batch_size * (hidden_weights + output_weights)
        + output_weights  # weight matrix streamed once per batch
    )
    return WorkloadCounts(dense_macs=dense_macs, bytes_touched=bytes_touched)


def sampled_softmax_iteration_work(
    batch_size: int,
    avg_input_nnz: float,
    hidden_dim: int,
    num_sampled: int,
    bytes_per_value: int = 4,
) -> WorkloadCounts:
    """Work for one sampled-softmax iteration (candidate set of ``num_sampled``)."""
    if min(batch_size, hidden_dim, num_sampled) <= 0:
        raise ValueError("batch_size, hidden_dim and num_sampled must be positive")
    hidden_weights = avg_input_nnz * hidden_dim
    output_weights = hidden_dim * num_sampled
    dense_macs = _PASSES_PER_WEIGHT * batch_size * (hidden_weights + output_weights)
    bytes_touched = bytes_per_value * batch_size * (hidden_weights + output_weights)
    return WorkloadCounts(dense_macs=dense_macs, bytes_touched=bytes_touched)
