"""Memory-subsystem model: footprints, TLB behaviour and Transparent Hugepages.

Appendix D of the paper measures the effect of 2 MB / 1 GB pages on TLB miss
rates, page-table walks and page faults (Table 4), and Section 5.4 reports a
~1.3x end-to-end speed-up from Hugepages plus SIMD batching (Figure 10).

Real hardware counters are unavailable here, so this module models them from
first principles: the number of distinct pages a SLIDE iteration touches,
the TLB capacity, and the probability that a random access misses the TLB.
The *relative* improvements from larger pages — which is what Table 4 and
Figure 10 report — follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PageConfig",
    "TLBModel",
    "MemoryFootprint",
    "slide_memory_footprint",
    "hugepages_counter_comparison",
    "HUGEPAGES_SPEEDUP",
]

# End-to-end speed-up from the Hugepages + SIMD + software-prefetch bundle,
# as measured in the paper (Section 5.4, Figure 10).
HUGEPAGES_SPEEDUP = 1.3

# Typical data-TLB capacity of the paper's Broadwell Xeon (entries).
DTLB_ENTRIES = 1536
# Instruction-TLB capacity (entries).
ITLB_ENTRIES = 128
# Cycles burned by one page-table walk (order of magnitude).
PAGE_WALK_CYCLES = 50.0


@dataclass(frozen=True)
class PageConfig:
    """A virtual-memory page configuration."""

    name: str
    page_bytes: int

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ValueError("page_bytes must be positive")


STANDARD_PAGES = PageConfig(name="4KB pages", page_bytes=4 * 1024)
HUGE_PAGES_2MB = PageConfig(name="2MB hugepages", page_bytes=2 * 1024 * 1024)
HUGE_PAGES_1GB = PageConfig(name="1GB hugepages", page_bytes=1024 * 1024 * 1024)


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes of memory a workload touches, split by access behaviour."""

    resident_bytes: float
    touched_per_iteration_bytes: float
    accesses_per_iteration: float

    def __post_init__(self) -> None:
        if min(
            self.resident_bytes,
            self.touched_per_iteration_bytes,
            self.accesses_per_iteration,
        ) < 0:
            raise ValueError("footprint quantities cannot be negative")


def slide_memory_footprint(
    input_dim: int,
    hidden_dim: int,
    output_dim: int,
    batch_size: int,
    avg_active_output: float,
    avg_input_nnz: float,
    l_tables: int,
    bytes_per_value: int = 4,
) -> MemoryFootprint:
    """Estimate SLIDE's memory footprint for one iteration.

    Resident memory covers the weight matrices, the Adam moments (2x), the
    per-neuron batch-sized bookkeeping arrays of Figure 2, and the hash
    tables.  Touched-per-iteration covers the active weights, activations and
    bucket probes of one mini-batch.
    """
    if min(input_dim, hidden_dim, output_dim, batch_size, l_tables) <= 0:
        raise ValueError("dimensions must be positive")
    weights = (input_dim * hidden_dim + hidden_dim * output_dim) * bytes_per_value
    optimizer_state = 2 * weights
    per_neuron_arrays = (hidden_dim + output_dim) * batch_size * (2 * bytes_per_value + 1)
    hash_tables = l_tables * output_dim * 8  # id + bucket metadata
    resident = float(weights + optimizer_state + per_neuron_arrays + hash_tables)

    touched = float(
        batch_size
        * (avg_input_nnz * hidden_dim + hidden_dim * avg_active_output)
        * 2
        * bytes_per_value
    )
    accesses = float(
        batch_size * (avg_input_nnz * hidden_dim + hidden_dim * avg_active_output) * 3
    )
    return MemoryFootprint(
        resident_bytes=resident,
        touched_per_iteration_bytes=touched,
        accesses_per_iteration=accesses,
    )


class TLBModel:
    """TLB miss-rate / page-walk model for a given page size.

    The model assumes the per-iteration accesses are scattered uniformly over
    the touched working set (the worst case for SLIDE's random neuron
    gathers).  A TLB with ``entries`` slots covers ``entries * page_bytes``
    of address space; accesses beyond that coverage miss with probability
    proportional to the uncovered fraction.
    """

    def __init__(self, page: PageConfig, dtlb_entries: int = DTLB_ENTRIES, itlb_entries: int = ITLB_ENTRIES) -> None:
        if dtlb_entries <= 0 or itlb_entries <= 0:
            raise ValueError("TLB entry counts must be positive")
        self.page = page
        self.dtlb_entries = int(dtlb_entries)
        self.itlb_entries = int(itlb_entries)

    # ------------------------------------------------------------------
    def dtlb_coverage_bytes(self) -> float:
        return float(self.dtlb_entries * self.page.page_bytes)

    def dtlb_miss_rate(self, footprint: MemoryFootprint) -> float:
        """Fraction of data accesses that miss the data TLB."""
        working_set = footprint.touched_per_iteration_bytes
        coverage = self.dtlb_coverage_bytes()
        if working_set <= coverage:
            # Small residual miss rate from cold/compulsory misses.
            return 0.002
        uncovered = (working_set - coverage) / working_set
        # Random accesses over the working set hit an uncovered page with
        # probability ``uncovered``; temporal locality tempers it.
        return float(min(0.95, 0.002 + 0.12 * uncovered))

    def itlb_miss_rate(self, code_bytes: float = 64 * 1024 * 1024) -> float:
        """Fraction of instruction fetch accesses that miss the ITLB.

        Deep-learning frameworks carry very large code footprints (the paper
        measures a 56 % ITLB miss rate with 4 KB pages); the miss rate falls
        sharply once a few huge pages cover the hot code.
        """
        coverage = self.itlb_entries * self.page.page_bytes
        if code_bytes <= coverage:
            return 0.01
        uncovered = (code_bytes - coverage) / code_bytes
        return float(min(0.95, 0.01 + 0.60 * uncovered))

    def page_walk_cycle_fraction(self, footprint: MemoryFootprint, instruction_share: float = 0.25) -> tuple[float, float]:
        """(data, instruction) fraction of CPU cycles lost to page walks."""
        d_miss = self.dtlb_miss_rate(footprint)
        i_miss = self.itlb_miss_rate()
        # Roughly one data access per MAC; page walks cost PAGE_WALK_CYCLES.
        data_fraction = min(0.5, d_miss * PAGE_WALK_CYCLES / (PAGE_WALK_CYCLES * d_miss + 4.0))
        instr_fraction = min(0.1, i_miss * instruction_share * 0.001)
        return float(data_fraction), float(instr_fraction)

    def ram_reads_per_second(
        self, footprint: MemoryFootprint, iterations_per_second: float, instruction_share: float = 0.004
    ) -> tuple[float, float]:
        """(data, instruction) main-memory reads per second caused by TLB misses."""
        data = self.dtlb_miss_rate(footprint) * footprint.accesses_per_iteration * iterations_per_second
        instr = self.itlb_miss_rate() * footprint.accesses_per_iteration * instruction_share * iterations_per_second
        return float(data), float(instr)

    def page_faults_per_second(self, footprint: MemoryFootprint, iterations_per_second: float) -> float:
        """Soft page faults per second (first-touch / reclaim activity).

        Scales with the number of *distinct pages* newly touched per second;
        bigger pages mean fewer distinct pages and therefore fewer faults.
        """
        pages_touched = footprint.touched_per_iteration_bytes / self.page.page_bytes
        fault_fraction = 0.002  # most touched pages are already resident
        baseline = 5_000.0  # background process activity
        return float(baseline + fault_fraction * pages_touched * iterations_per_second)


def hugepages_counter_comparison(
    footprint: MemoryFootprint,
    iterations_per_second: float = 10.0,
) -> dict[str, dict[str, float]]:
    """Reproduce the structure of Table 4: counters with and without hugepages.

    Returns a mapping ``metric -> {"without_hugepages": x, "with_hugepages": y}``.
    """
    small = TLBModel(STANDARD_PAGES)
    large = TLBModel(HUGE_PAGES_2MB)

    d_small, i_small = small.page_walk_cycle_fraction(footprint)
    d_large, i_large = large.page_walk_cycle_fraction(footprint)
    ram_d_small, ram_i_small = small.ram_reads_per_second(footprint, iterations_per_second)
    ram_d_large, ram_i_large = large.ram_reads_per_second(footprint, iterations_per_second)

    return {
        "dTLB load miss rate": {
            "without_hugepages": small.dtlb_miss_rate(footprint),
            "with_hugepages": large.dtlb_miss_rate(footprint),
        },
        "iTLB load miss rate": {
            "without_hugepages": small.itlb_miss_rate(),
            "with_hugepages": large.itlb_miss_rate(),
        },
        "PTW dTLB-miss cycle fraction": {
            "without_hugepages": d_small,
            "with_hugepages": d_large,
        },
        "PTW iTLB-miss cycle fraction": {
            "without_hugepages": i_small,
            "with_hugepages": i_large,
        },
        "RAM read dTLB-miss per second": {
            "without_hugepages": ram_d_small,
            "with_hugepages": ram_d_large,
        },
        "RAM read iTLB-miss per second": {
            "without_hugepages": ram_i_small,
            "with_hugepages": ram_i_large,
        },
        "PageFaults per second": {
            "without_hugepages": small.page_faults_per_second(footprint, iterations_per_second),
            "with_hugepages": large.page_faults_per_second(footprint, iterations_per_second),
        },
    }
