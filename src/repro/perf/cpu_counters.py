"""Analytical CPU pipeline-slot model (Table 2 and Figure 6 of the paper).

Intel's top-down methodology (as surfaced by VTune) splits pipeline slots
into four bins: front-end bound, memory bound, core bound and retiring.  The
paper's key observation is the *direction of travel* of the memory-bound
fraction as the thread count grows:

* **TF-CPU** becomes *more* memory bound with more threads: every thread
  streams the same enormous output-layer weight matrix, so threads compete
  for LLC capacity and memory bandwidth, and contention grows with the
  thread count.
* **SLIDE** becomes *less* memory bound: each thread touches only its own
  sample's tiny active set (private, scattered accesses).  Per-thread
  working sets shrink as the batch is spread over more threads and the
  independent miss streams of many threads overlap in the memory system
  (memory-level parallelism), so the *stall fraction per thread* falls.

The model below captures those two mechanisms with a handful of parameters
calibrated so that the 8/16/32-thread numbers land near Table 2 / Figure 6.
It is a substitution for VTune (see DESIGN.md §2): the inputs — working-set
sizes per thread and shared — are computed from the actual workload
dimensions, and the outputs are the same derived ratios the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CPUInefficiencyBreakdown",
    "inefficiency_breakdown",
    "core_utilization",
    "scattered_memory_bound",
    "streaming_memory_bound",
    "slide_working_sets",
    "tf_working_sets",
    "slide_breakdown",
    "tf_breakdown",
]

# Last-level cache capacity of the paper's Xeon E5-2699A v4 (55 MB), bytes.
LLC_BYTES = 55 * 1024 * 1024
# Thread count at which streaming workloads have consumed half the DRAM
# bandwidth headroom (calibration constant).
_BANDWIDTH_HALF_SATURATION = 8.0
# Exponent of the latency-hiding benefit scattered workloads get from
# additional independent miss streams (calibration constant).
_MLP_EXPONENT = 0.35


@dataclass(frozen=True)
class CPUInefficiencyBreakdown:
    """Fractions of pipeline slots per top-down category (sum to 1)."""

    framework: str
    threads: int
    front_end_bound: float
    memory_bound: float
    retiring: float
    core_bound: float

    def utilization(self) -> float:
        """Approximate core utilisation: retiring plus core-bound slots.

        Slots stalled on memory or the front end do no useful work; slots
        that retire instructions, or are limited only by execution-port
        pressure, count as utilised — this matches how the paper derives the
        Table 2 utilisation numbers from the Figure 6 breakdown.
        """
        return self.retiring + self.core_bound

    def as_row(self) -> dict[str, float | str]:
        return {
            "framework": self.framework,
            "threads": self.threads,
            "front_end_bound": round(self.front_end_bound, 3),
            "memory_bound": round(self.memory_bound, 3),
            "retiring": round(self.retiring, 3),
            "core_bound": round(self.core_bound, 3),
            "utilization": round(self.utilization(), 3),
        }


# ----------------------------------------------------------------------
# Memory-bound models for the two access patterns
# ----------------------------------------------------------------------
def scattered_memory_bound(
    per_thread_working_set_bytes: float, threads: int
) -> float:
    """Memory-bound fraction for private, scattered (SLIDE-like) access.

    Two effects: how badly one thread's working set overflows its share of
    cache (raises stalls), and how much memory-level parallelism the other
    threads' independent miss streams add (hides latency, lowers the stall
    *fraction*).  The second effect wins as threads grow, reproducing the
    downward trend of Figure 6 for SLIDE.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    if per_thread_working_set_bytes < 0:
        raise ValueError("working set cannot be negative")
    cache_share = LLC_BYTES / threads
    overflow = per_thread_working_set_bytes / (per_thread_working_set_bytes + cache_share)
    latency_hiding = float(threads) ** (-_MLP_EXPONENT)
    return float(np.clip(overflow * latency_hiding + 0.05, 0.0, 0.95))


def streaming_memory_bound(shared_working_set_bytes: float, threads: int) -> float:
    """Memory-bound fraction for shared streaming (dense-TF-like) access.

    Every thread streams the same huge weight matrix; bandwidth contention
    grows with the thread count, reproducing the upward trend of Figure 6
    for TF-CPU.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    if shared_working_set_bytes < 0:
        raise ValueError("working set cannot be negative")
    footprint_pressure = shared_working_set_bytes / (shared_working_set_bytes + LLC_BYTES)
    contention = threads / (threads + _BANDWIDTH_HALF_SATURATION)
    return float(np.clip(footprint_pressure * (0.30 + 0.55 * contention) + 0.05, 0.0, 0.95))


def inefficiency_breakdown(
    framework: str,
    threads: int,
    memory_bound: float,
    front_end_bound: float = 0.08,
    core_bound: float = 0.12,
) -> CPUInefficiencyBreakdown:
    """Assemble a four-way top-down breakdown around a memory-bound estimate."""
    if not 0 <= memory_bound <= 1:
        raise ValueError("memory_bound must lie in [0, 1]")
    scale = min(1.0, (1.0 - memory_bound) / max(front_end_bound + core_bound, 1e-9))
    front = front_end_bound * min(scale, 1.0)
    core = core_bound * min(scale, 1.0)
    retiring = max(0.0, 1.0 - memory_bound - front - core)
    return CPUInefficiencyBreakdown(
        framework=framework,
        threads=threads,
        front_end_bound=front,
        memory_bound=memory_bound,
        retiring=retiring,
        core_bound=core,
    )


def core_utilization(breakdown: CPUInefficiencyBreakdown) -> float:
    """Convenience wrapper matching Table 2's 'core utilisation' column."""
    return breakdown.utilization()


# ----------------------------------------------------------------------
# Working-set estimation from workload dimensions
# ----------------------------------------------------------------------
def slide_working_sets(
    avg_active_output: float,
    hidden_dim: int,
    batch_size: int,
    threads: int,
    output_dim: int,
    bytes_per_value: int = 4,
) -> tuple[float, float]:
    """(per-thread, shared) working sets for SLIDE at a given thread count.

    Each thread processes ``batch_size / threads`` samples and touches only
    their active weights; the shared component is the hash-table metadata,
    which is small relative to the weight matrix.
    """
    if min(hidden_dim, batch_size, threads, output_dim) <= 0:
        raise ValueError("dimensions must be positive")
    samples_per_thread = max(1.0, batch_size / threads)
    per_thread = samples_per_thread * avg_active_output * hidden_dim * bytes_per_value
    shared = 16.0 * output_dim * 0.05
    return per_thread, shared


def tf_working_sets(
    output_dim: int,
    hidden_dim: int,
    batch_size: int,
    threads: int,
    bytes_per_value: int = 4,
) -> tuple[float, float]:
    """(per-thread, shared) working sets for dense TF-CPU training."""
    if min(output_dim, hidden_dim, batch_size, threads) <= 0:
        raise ValueError("dimensions must be positive")
    shared = float(output_dim) * hidden_dim * bytes_per_value
    samples_per_thread = max(1.0, batch_size / threads)
    per_thread = samples_per_thread * (hidden_dim + output_dim) * bytes_per_value
    return per_thread, shared


# ----------------------------------------------------------------------
# One-call helpers used by the Table 2 / Figure 6 benches
# ----------------------------------------------------------------------
def slide_breakdown(
    threads: int,
    avg_active_output: float,
    hidden_dim: int,
    batch_size: int,
    output_dim: int,
) -> CPUInefficiencyBreakdown:
    """Top-down breakdown for SLIDE's access pattern at ``threads`` threads."""
    per_thread, _shared = slide_working_sets(
        avg_active_output, hidden_dim, batch_size, threads, output_dim
    )
    memory = scattered_memory_bound(per_thread, threads)
    return inefficiency_breakdown("SLIDE", threads, memory, core_bound=0.25)


def tf_breakdown(
    threads: int,
    output_dim: int,
    hidden_dim: int,
    batch_size: int,
) -> CPUInefficiencyBreakdown:
    """Top-down breakdown for dense TF-CPU's access pattern."""
    _per_thread, shared = tf_working_sets(output_dim, hidden_dim, batch_size, threads)
    memory = streaming_memory_bound(shared, threads)
    return inefficiency_breakdown("Tensorflow-CPU", threads, memory, core_bound=0.10)
