"""Latency histogram and throughput accounting for the serving path.

Unlike the rest of :mod:`repro.perf` — which attributes *simulated*
wall-clock time to measured per-iteration work — this module records *real*
wall-clock observations: per-request latencies measured by the model server
(:mod:`repro.serving`).  The histogram is the classic log-spaced-bucket
design used by production serving systems (HdrHistogram, Prometheus): O(1)
thread-safe recording, bounded memory, and percentile queries with a relative
error bounded by the bucket growth factor.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyHistogram", "ThroughputMeter"]


class LatencyHistogram:
    """Thread-safe log-bucketed histogram of latency observations (seconds).

    Parameters
    ----------
    min_latency / max_latency:
        Range covered by the log-spaced buckets.  Observations outside the
        range are clamped into the first / last bucket (their exact value
        still contributes to ``sum``/``min``/``max``).
    growth:
        Ratio between consecutive bucket boundaries; the relative error of
        a percentile estimate is at most ``growth - 1``.
    reservoir_size:
        When positive, retain up to this many *raw* observations in a
        uniform reservoir (Vitter's Algorithm R) alongside the buckets.
        :meth:`exact_percentile` then computes percentiles from the raw
        samples — exact while the observation count fits the reservoir,
        an unbiased sample estimate beyond it.  This is what fixes
        cross-worker tail aggregation: per-worker histograms merged with
        :meth:`merge` pool their reservoirs, so an aggregated p99/p999 is
        not limited to bucket resolution.
    """

    def __init__(
        self,
        min_latency: float = 1e-6,
        max_latency: float = 60.0,
        growth: float = 1.15,
        reservoir_size: int = 0,
        seed: int = 0,
    ) -> None:
        if min_latency <= 0 or max_latency <= min_latency:
            raise ValueError("require 0 < min_latency < max_latency")
        if growth <= 1.0:
            raise ValueError("growth must be greater than 1")
        if reservoir_size < 0:
            raise ValueError("reservoir_size must be non-negative")
        self.min_latency = float(min_latency)
        self.max_latency = float(max_latency)
        self.growth = float(growth)
        self.reservoir_size = int(reservoir_size)
        num_buckets = (
            int(math.ceil(math.log(max_latency / min_latency) / math.log(growth))) + 1
        )
        # Bucket i covers [boundaries[i], boundaries[i+1]).
        self._boundaries = min_latency * self.growth ** np.arange(num_buckets + 1)
        self._counts = np.zeros(num_buckets, dtype=np.int64)
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._reservoir: list[float] = []
        self._res_rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, latency_seconds: float) -> None:
        """Record one latency observation (negative values are clamped to 0)."""
        value = max(float(latency_seconds), 0.0)
        clamped = min(max(value, self.min_latency), self.max_latency)
        bucket = int(
            math.floor(math.log(clamped / self.min_latency) / math.log(self.growth))
        )
        bucket = min(max(bucket, 0), self._counts.shape[0] - 1)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if self.reservoir_size:
                if len(self._reservoir) < self.reservoir_size:
                    self._reservoir.append(value)
                else:
                    # Algorithm R: observation i replaces a random slot with
                    # probability reservoir_size / i, keeping the sample
                    # uniform over everything seen so far.
                    slot = int(self._res_rng.integers(self._count))
                    if slot < self.reservoir_size:
                        self._reservoir[slot] = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram (same layout)."""
        if (
            self._counts.shape != other._counts.shape
            or self.growth != other.growth
            or self.min_latency != other.min_latency
            or self.max_latency != other.max_latency
        ):
            raise ValueError("histograms must share bucket layout to merge")
        if other is self:
            return
        # Acquire both locks in a canonical order so concurrent a.merge(b)
        # and b.merge(a) cannot deadlock.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            if self.reservoir_size and (self._reservoir or other._reservoir):
                combined = self._reservoir + other._reservoir
                if len(combined) <= self.reservoir_size:
                    self._reservoir = combined
                else:
                    # Each retained sample stands for count/len(reservoir)
                    # underlying observations; weighting the downsample by
                    # that keeps the merged reservoir approximately uniform
                    # over both histories.
                    weights = np.concatenate(
                        [
                            np.full(
                                len(self._reservoir),
                                self._count / max(len(self._reservoir), 1),
                            ),
                            np.full(
                                len(other._reservoir),
                                other._count / max(len(other._reservoir), 1),
                            ),
                        ]
                    )
                    keep = self._res_rng.choice(
                        len(combined),
                        size=self.reservoir_size,
                        replace=False,
                        p=weights / weights.sum(),
                    )
                    self._reservoir = [combined[i] for i in keep]
            self._counts += other._counts
            self._count += other._count
            self._sum += other._sum
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Latency at percentile ``p`` (in [0, 100]), interpolated in-bucket."""
        if not 0 <= p <= 100:
            raise ValueError("p must lie in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = (p / 100.0) * self._count
            cumulative = np.cumsum(self._counts)
            bucket = int(np.searchsorted(cumulative, rank, side="left"))
            bucket = min(bucket, self._counts.shape[0] - 1)
            lower = self._boundaries[bucket]
            upper = self._boundaries[bucket + 1]
            in_bucket = self._counts[bucket]
            before = cumulative[bucket] - in_bucket
            fraction = (rank - before) / in_bucket if in_bucket else 0.0
            estimate = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            # Never report outside the observed range.
            return float(min(max(estimate, self._min), self._max))

    def exact_percentile(self, p: float) -> float:
        """Percentile from the retained raw samples (requires a reservoir).

        Exact while the observation count fits ``reservoir_size``; beyond
        that it is the percentile of a uniform sample of the history.  Falls
        back to the bucketed estimate when no reservoir is configured.
        """
        if not 0 <= p <= 100:
            raise ValueError("p must lie in [0, 100]")
        with self._lock:
            samples = list(self._reservoir)
        if not samples:
            return self.percentile(p)
        return float(np.percentile(np.asarray(samples, dtype=np.float64), p))

    @property
    def retained_samples(self) -> int:
        """Number of raw observations currently held in the reservoir."""
        with self._lock:
            return len(self._reservoir)

    def summary(self) -> dict[str, float]:
        """The quantiles and moments reported by the serving stats endpoint."""
        exact = self.reservoir_size > 0 and self.retained_samples > 0
        quantile = self.exact_percentile if exact else self.percentile
        return {
            "count": float(self.count),
            "mean_s": self.mean,
            "min_s": 0.0 if self._count == 0 else float(self._min),
            "max_s": float(self._max),
            "p50_s": quantile(50.0),
            "p95_s": quantile(95.0),
            "p99_s": quantile(99.0),
            "p999_s": quantile(99.9),
        }


@dataclass
class ThroughputMeter:
    """Counts completed requests against a monotonic wall-clock window."""

    started_at: float | None = None
    completed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def start(self) -> None:
        """(Re)start the measurement window."""
        with self._lock:
            self.started_at = time.monotonic()
            self.completed = 0

    def mark(self, n: int = 1) -> None:
        """Record ``n`` completed requests."""
        with self._lock:
            if self.started_at is None:
                self.started_at = time.monotonic()
            self.completed += int(n)

    def elapsed(self) -> float:
        with self._lock:
            if self.started_at is None:
                return 0.0
            return time.monotonic() - self.started_at

    def requests_per_second(self) -> float:
        elapsed = self.elapsed()
        if elapsed <= 0.0:
            return 0.0
        return self.completed / elapsed
