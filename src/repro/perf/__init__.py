"""Performance substrate: operation counting, device profiles, wall-clock
simulation, and CPU-counter / memory-subsystem models.

The paper's headline results are wall-clock comparisons on a 44-core Xeon and
a V100 GPU.  Neither device is available here (and pure-Python execution
cannot expose OpenMP-level scaling), so this package converts *measured
per-iteration work* — active neurons, active weights, hash computations,
table lookups, counted by the actual SLIDE/baseline implementations — into
simulated wall-clock times using device profiles calibrated against the
numbers the paper itself reports (Table 2 core utilisation, Figure 5 absolute
times).  See DESIGN.md §2 for the substitution rationale.

:mod:`repro.perf.latency` is the exception: it records *real* wall-clock
observations (per-request serving latency, throughput) for the model server
in :mod:`repro.serving`.
"""

from repro.perf.cost_model import (
    WorkloadCounts,
    slide_iteration_work,
    dense_iteration_work,
    sampled_softmax_iteration_work,
)
from repro.perf.devices import (
    DeviceProfile,
    CPUProfile,
    GPUProfile,
    UtilizationCurve,
    SLIDE_CPU_PROFILE,
    TF_CPU_PROFILE,
    TF_GPU_PROFILE,
)
from repro.perf.simulator import WallClockSimulator, SimulatedRun
from repro.perf.cpu_counters import (
    CPUInefficiencyBreakdown,
    core_utilization,
    inefficiency_breakdown,
)
from repro.perf.memory import (
    PageConfig,
    TLBModel,
    MemoryFootprint,
    slide_memory_footprint,
    hugepages_counter_comparison,
    HUGEPAGES_SPEEDUP,
)
from repro.perf.latency import LatencyHistogram, ThroughputMeter
from repro.perf.phases import PhaseTimer

__all__ = [
    "PhaseTimer",
    "WorkloadCounts",
    "slide_iteration_work",
    "dense_iteration_work",
    "sampled_softmax_iteration_work",
    "DeviceProfile",
    "CPUProfile",
    "GPUProfile",
    "UtilizationCurve",
    "SLIDE_CPU_PROFILE",
    "TF_CPU_PROFILE",
    "TF_GPU_PROFILE",
    "WallClockSimulator",
    "SimulatedRun",
    "CPUInefficiencyBreakdown",
    "core_utilization",
    "inefficiency_breakdown",
    "PageConfig",
    "TLBModel",
    "MemoryFootprint",
    "slide_memory_footprint",
    "hugepages_counter_comparison",
    "HUGEPAGES_SPEEDUP",
    "LatencyHistogram",
    "ThroughputMeter",
]
